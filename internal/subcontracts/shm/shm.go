// Package shm implements a shared-buffer subcontract demonstrating the
// purpose of invoke_preamble (§5.1.4): "we have some subcontracts that use
// shared memory regions to communicate with their servers. In this case
// when invoke_preamble is called, the subcontract can adjust the
// communications buffer to point into the shared memory region so that
// arguments are directly marshalled into the region, rather than having to
// be copied there after all marshalling is complete."
//
// Domains here share one address space, so a "shared memory region" is a
// pooled buffer (drawn from a buffer.RegionPool, the same segment
// machinery behind netd's same-machine bulk tier) handed to the server
// without copying. The subcontract
// supports two modes so the optimization is measurable (experiment E9):
//
//   - Direct: invoke_preamble swaps the call's buffer for a pooled region;
//     the stubs marshal straight into it and invoke passes it through.
//   - CopyAfter: the baseline the paper describes — arguments are
//     marshalled into an ordinary buffer and copied into the region after
//     all marshalling is complete.
package shm

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/trace"
)

// SCID is the shared-buffer subcontract identifier.
const SCID core.ID = 7

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "shm.so"

// Mode selects whether the preamble optimization is active.
type Mode int

// Modes.
const (
	// Direct marshals arguments straight into the shared region.
	Direct Mode = iota
	// CopyAfter marshals into a private buffer and copies into the
	// region after marshalling, as systems without invoke_preamble must.
	CopyAfter
)

// regionSize is the capacity of pooled regions; large enough that typical
// calls never reallocate (reallocation would defeat the point).
const regionSize = 64 << 10

// SC is a shared-buffer subcontract instance. Distinct instances may run
// in different modes but share the wire identity SCID.
type SC struct {
	mode Mode
	pool *buffer.RegionPool
}

// New creates a shared-buffer subcontract in the given mode.
func New(mode Mode) *SC {
	return &SC{mode: mode, pool: buffer.NewRegionPool(regionSize)}
}

// Register installs s in a registry (the library entry point).
func (s *SC) Register(r *core.Registry) error { return r.Register(s) }

// ID implements core.Subcontract.
func (s *SC) ID() core.ID { return SCID }

// Name implements core.Subcontract.
func (s *SC) Name() string { return "shm" }

// stats is the subcontract's metrics block, shared by the shm modes (they
// are one subcontract family with one name).
var stats = scstats.For("shm")

func rep(obj *core.Object) (doorsc.Rep, error) {
	r, ok := obj.Rep.(doorsc.Rep)
	if !ok {
		return doorsc.Rep{}, fmt.Errorf("shm: foreign representation %T", obj.Rep)
	}
	return r, nil
}

// Marshal behaves like the plain door subcontracts; the shared region is
// per-call state, not per-object state.
func (s *SC) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	if err := obj.Env.Domain.MoveToBuffer(r.H, buf); err != nil {
		return fmt.Errorf("shm: marshal: %w", err)
	}
	return obj.MarkConsumed()
}

// MarshalCopy writes a duplicated identifier, leaving the original usable.
func (s *SC) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	if err := obj.Env.Domain.CopyToBuffer(r.H, buf); err != nil {
		return fmt.Errorf("shm: marshal_copy: %w", err)
	}
	return nil
}

// Unmarshal fabricates an object using this subcontract instance.
func (s *SC) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("shm: unmarshal: %w", err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), s, doorsc.Rep{H: h}), nil
}

// InvokePreamble is where the optimization lives: in Direct mode the call
// buffer is replaced with a pooled region before any argument marshalling
// has begun, and the stub layer's Release hook returns it to the pool.
func (s *SC) InvokePreamble(obj *core.Object, call *core.Call) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	if s.mode != Direct {
		return nil
	}
	region := s.pool.Get()
	call.SetArgs(region)
	call.Release = func() { s.pool.Put(region) }
	return nil
}

// Invoke executes the door call. In CopyAfter mode the fully marshalled
// arguments are first copied into a region, modelling the extra copy the
// preamble avoids.
func (s *SC) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	st := stats
	begin := st.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := s.invoke(obj, call)
	sp.End(call.Info(), err)
	st.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

var spanInvoke = trace.Name("shm.invoke")

func (s *SC) invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	args := call.Args()
	if s.mode == CopyAfter {
		region := s.pool.Get()
		region.Splice(args) // copies the byte stream, transfers the doors
		defer s.pool.Put(region)
		return obj.Env.Domain.CallInfo(r.H, region, call.Info())
	}
	return obj.Env.Domain.CallInfo(r.H, args, call.Info())
}

// Copy duplicates the door identifier.
func (s *SC) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	h, err := obj.Env.Domain.CopyDoor(r.H)
	if err != nil {
		return nil, fmt.Errorf("shm: copy: %w", err)
	}
	return core.NewObject(obj.Env, obj.MT, s, doorsc.Rep{H: h}), nil
}

// Consume deletes the door identifier.
func (s *SC) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	if err := obj.Env.Domain.DeleteDoor(r.H); err != nil {
		return fmt.Errorf("shm: consume: %w", err)
	}
	return obj.MarkConsumed()
}

// Export creates a shared-buffer Spring object in env backed by skel.
func (s *SC) Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, unref func()) (*core.Object, *kernel.Door) {
	h, door := env.Domain.CreateDoorInfo(doorsc.ServerProc(skel), unref)
	return core.NewObject(env, mt, s, doorsc.Rep{H: h}), door
}
