package simplex

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
)

func setup(t *testing.T) (*core.Env, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli
}

func TestLocalInvokeWithoutDoor(t *testing.T) {
	srv, _ := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)

	if HasDoor(obj) {
		t.Fatal("door created eagerly; §5.2.1 optimization missing")
	}
	before := srv.Domain.HandleCount()
	if v, err := sctest.Add(obj, 3); err != nil || v != 3 {
		t.Fatalf("local Add = %d, %v", v, err)
	}
	if HasDoor(obj) || srv.Domain.HandleCount() != before {
		t.Fatal("local invocation created cross-domain resources")
	}
}

func TestMarshalCreatesDoorLazily(t *testing.T) {
	srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	if _, err := sctest.Add(obj, 2); err != nil {
		t.Fatal(err)
	}

	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(remote); err != nil || v != 2 {
		t.Fatalf("remote Get = %d, %v; state lost across marshal", v, err)
	}
	if remote.SC.Name() != "simplex" {
		t.Fatalf("remote subcontract = %q", remote.SC.Name())
	}
}

func TestLocalCopySharesState(t *testing.T) {
	srv, _ := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	cp, err := obj.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(cp); err != nil || v != 1 {
		t.Fatalf("copy sees %d, %v; want shared state 1", v, err)
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	// The copy remains usable after the original is consumed.
	if _, err := sctest.Get(cp); err != nil {
		t.Fatalf("copy dead after original consumed: %v", err)
	}
	if err := cp.Consume(); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalCopyThenLocalAndRemote(t *testing.T) {
	srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)

	remote, err := sctest.TransferCopy(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	// Local object still works via the in-process fast path; both views
	// reach the same skeleton.
	if _, err := sctest.Add(obj, 5); err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(remote); err != nil || v != 5 {
		t.Fatalf("remote view = %d, %v", v, err)
	}
}

func TestRevokeLocalAndRemote(t *testing.T) {
	srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.TransferCopy(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := Revoke(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(obj); !errors.Is(err, ErrRevoked) {
		t.Fatalf("local invoke after revoke = %v, want ErrRevoked", err)
	}
	if _, err := sctest.Get(remote); !errors.Is(err, kernel.ErrRevoked) {
		t.Fatalf("remote invoke after revoke = %v, want kernel.ErrRevoked", err)
	}
}

func TestRevokeBeforeDoorCreation(t *testing.T) {
	srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	if err := Revoke(obj); err != nil {
		t.Fatal(err)
	}
	// Marshalling after revocation creates the door already revoked.
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(remote); !errors.Is(err, kernel.ErrRevoked) {
		t.Fatalf("invoke on late-created revoked door = %v", err)
	}
}

func TestUnreferencedAfterAllIdentifiersGone(t *testing.T) {
	srv, cli := setup(t)
	ctr := &sctest.Counter{}
	unref := make(chan struct{})
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), func() { close(unref) })
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	// The local object was consumed by the marshal; only the client
	// identifier keeps the door alive.
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced never fired after last client identifier died")
	}
}

func TestDoubleConsume(t *testing.T) {
	srv, _ := setup(t)
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if err := obj.Consume(); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("double consume = %v, want ErrConsumed", err)
	}
}

func TestSimplexUnmarshalsViaSingletonDefault(t *testing.T) {
	// The counter type's default subcontract is singleton. Receiving a
	// simplex-marshalled counter through the generic unmarshal must route
	// to simplex via the compatible-subcontract protocol.
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.ID() != SCID {
		t.Fatalf("subcontract id = %d, want %d", remote.SC.ID(), SCID)
	}
}
