// Package simplex implements the simplex subcontract of §7: a very simple
// client-server subcontract using a single kernel door identifier to
// communicate with the server.
//
// Simplex additionally provides the §5.2.1 optimization for Spring objects
// that reside in the same address space as their server: an object created
// by Export uses a special server-side subcontract operations vector whose
// invoke runs the server stubs directly, and the expense of creating
// cross-domain communication resources (the kernel door) is deferred until
// the object is actually marshalled for transmission to another domain.
package simplex

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/trace"
)

// SCID is the simplex subcontract identifier.
const SCID core.ID = 2

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "simplex.so"

// Remote is the client-side (cross-domain) operations vector: behaviourally
// the door-based vector, under simplex's identity.
var Remote = &doorsc.Ops{Ident: SCID, SCName: "simplex"}

// Register is the library entry point installing simplex in a registry.
func Register(r *core.Registry) error { return r.Register(Remote) }

// ErrRevoked is returned when invoking a locally revoked simplex object.
var ErrRevoked = errors.New("simplex: object revoked")

// localState is the state shared by all same-address-space copies of one
// exported object: the skeleton, and the lazily created door.
type localState struct {
	mu      sync.Mutex
	skel    stubs.Skeleton
	env     *core.Env
	typ     core.TypeID
	unref   func()
	door    *kernel.Door
	h       kernel.Handle
	refs    int
	revoked bool
}

// ensureDoor creates the kernel door on first marshal (§5.2.1: "when and
// if the object is actually marshalled ... the subcontract will finally
// create these resources"). Callers hold st.mu.
func (st *localState) ensureDoor() error {
	if st.door != nil {
		return nil
	}
	st.h, st.door = st.env.Domain.CreateDoorInfo(doorsc.ServerProcTyped(st.typ, st.skel), st.unref)
	if st.revoked {
		st.door.Revoke()
	}
	return nil
}

// release drops one local object's reference; when the last local object
// dies, the server domain's own door identifier is deleted so the door's
// lifetime is governed by the client identifiers alone.
func (st *localState) release() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.refs--
	if st.refs == 0 && st.door != nil {
		h := st.h
		st.h = 0
		return st.env.Domain.DeleteDoor(h)
	}
	return nil
}

// localOps is the server-side subcontract operations vector.
type localOps struct{}

var local core.ClientOps = localOps{}

func (localOps) ID() core.ID  { return SCID }
func (localOps) Name() string { return "simplex(local)" }

// localStats is the metrics block for the door-less local path; the
// remote path reports under "simplex" through its doorsc.Ops.
var localStats = scstats.For("simplex(local)")

// spanLocalInvoke traces the doorless local invocation path.
var spanLocalInvoke = trace.Name("simplex(local).invoke")

func state(obj *core.Object) (*localState, error) {
	st, ok := obj.Rep.(*localState)
	if !ok {
		return nil, fmt.Errorf("simplex: foreign representation %T", obj.Rep)
	}
	return st, nil
}

// Unmarshal delegates to the remote vector: a marshalled simplex object
// always unmarshals to a door-based client object.
func (localOps) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	return Remote.Unmarshal(env, mt, buf)
}

func (localOps) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	st, err := state(obj)
	if err != nil {
		return err
	}
	st.mu.Lock()
	if err := st.ensureDoor(); err != nil {
		st.mu.Unlock()
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	err = st.env.Domain.CopyToBuffer(st.h, buf)
	st.mu.Unlock()
	if err != nil {
		return fmt.Errorf("simplex: marshal: %w", err)
	}
	if err := obj.MarkConsumed(); err != nil {
		return err
	}
	return st.release()
}

func (localOps) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	st, err := state(obj)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.ensureDoor(); err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	if err := st.env.Domain.CopyToBuffer(st.h, buf); err != nil {
		return fmt.Errorf("simplex: marshal_copy: %w", err)
	}
	return nil
}

func (localOps) InvokePreamble(obj *core.Object, call *core.Call) error {
	return obj.CheckLive()
}

// Invoke runs the call without any kernel door: the optimized invocation
// mechanism for use within a single address space. An already-ended
// invocation context fails fast; once the local dispatch starts there is
// no preemption point (the server runs on the caller's thread, exactly as
// with a door call).
func (localOps) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := localStats.Begin()
	sp := trace.Begin(call.Info(), spanLocalInvoke)
	reply, err := localInvoke(obj, call)
	sp.End(call.Info(), err)
	localStats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

func localInvoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := call.Err(); err != nil {
		return nil, err
	}
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	st, err := state(obj)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	revoked := st.revoked
	st.mu.Unlock()
	if revoked {
		return nil, ErrRevoked
	}
	reply := buffer.New(128)
	if err := stubs.ServeCallInfo(st.skel, call.Args(), reply, call.Info()); err != nil {
		return nil, err
	}
	return reply, nil
}

func (localOps) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	st, err := state(obj)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.refs++
	st.mu.Unlock()
	return core.NewObject(obj.Env, obj.MT, local, st), nil
}

func (localOps) Consume(obj *core.Object) error {
	if err := obj.MarkConsumed(); err != nil {
		return err
	}
	st, err := state(obj)
	if err != nil {
		return err
	}
	return st.release()
}

// Export creates a simplex Spring object in env backed by skel. No kernel
// door is created until the object (or a copy) is first marshalled. unref,
// if non-nil, runs when the last client identifier for the eventual door
// is deleted.
func Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, unref func()) *core.Object {
	st := &localState{skel: skel, env: env, typ: mt.Type, unref: unref, refs: 1}
	return core.NewObject(env, mt, local, st)
}

// Revoke revokes a locally exported simplex object: in-process invocations
// fail immediately and the door (if it exists now or is created later) is
// revoked, so cross-domain clients fail too (§5.2.3).
func Revoke(obj *core.Object) error {
	st, err := state(obj)
	if err != nil {
		return fmt.Errorf("simplex: revoke on non-local object: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.revoked = true
	if st.door != nil {
		st.door.Revoke()
	}
	return nil
}

// HasDoor reports whether the lazily created kernel door exists yet
// (observability for tests and the E1/E5 experiments).
func HasDoor(obj *core.Object) bool {
	st, err := state(obj)
	if err != nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.door != nil
}
