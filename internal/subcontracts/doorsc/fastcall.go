package doorsc

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
)

// FastCall is a specialized stub path for the popular combination of a
// plain door-based subcontract (singleton/simplex remote) — the §9.1
// future direction: "providing specialized stubs for some particularly
// popular and performance-critical combinations of types and
// subcontracts. We would still keep the general purpose stubs available
// ... but when we were lucky enough to receive an object that happened to
// be of the right type and subcontract we would be able to use the
// specialized stubs."
//
// When the object's subcontract is a *doorsc.Ops, the call inlines what
// the general path does through two indirect subcontract calls: the
// (empty) invoke_preamble and the door invocation. Any other subcontract
// falls back to the general-purpose stubs, preserving identical
// semantics. Experiment E13 measures the difference.
func FastCall(obj *core.Object, op core.OpNum, marshalArgs, unmarshalResults stubs.MarshalFunc) error {
	if obj == nil {
		return core.ErrNilObject
	}
	sc, ok := obj.SC.(*Ops)
	if !ok {
		// Not the specialized combination: use the general-purpose stubs.
		return stubs.Call(obj, op, marshalArgs, unmarshalResults)
	}
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := sc.rep(obj)
	if err != nil {
		return err
	}
	args := buffer.New(64)
	args.WriteUint32(uint32(op))
	if marshalArgs != nil {
		if err := marshalArgs(args); err != nil {
			kernel.ReleaseBufferDoors(args)
			return fmt.Errorf("doorsc: marshalling %s op %d: %w", obj.MT.Type, op, err)
		}
	}
	reply, err := obj.Env.Domain.Call(r.H, args)
	if err != nil {
		return err
	}
	return stubs.DecodeReply(reply, unmarshalResults)
}
