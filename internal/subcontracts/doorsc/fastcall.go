package doorsc

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
)

// FastCall is a specialized stub path for the popular combination of a
// plain door-based subcontract (singleton/simplex remote) — the §9.1
// future direction: "providing specialized stubs for some particularly
// popular and performance-critical combinations of types and
// subcontracts. We would still keep the general purpose stubs available
// ... but when we were lucky enough to receive an object that happened to
// be of the right type and subcontract we would be able to use the
// specialized stubs."
//
// When the object's subcontract is a *doorsc.Ops, the call inlines what
// the general path does through two indirect subcontract calls: the
// (empty) invoke_preamble and the door invocation. Any other subcontract
// falls back to the general-purpose stubs, preserving identical
// semantics. Experiment E13 measures the difference.
func FastCall(obj *core.Object, op core.OpNum, marshalArgs, unmarshalResults stubs.MarshalFunc, opts ...core.CallOption) error {
	if obj == nil {
		return core.ErrNilObject
	}
	sc, ok := obj.SC.(*Ops)
	if !ok {
		// Not the specialized combination: use the general-purpose stubs.
		return stubs.Call(obj, op, marshalArgs, unmarshalResults, opts...)
	}
	st := sc.Stats()
	begin := st.Begin()
	err := fastCall(obj, sc, op, marshalArgs, unmarshalResults, opts)
	st.EndCall(begin, uint32(op), 0, err)
	return err
}

func fastCall(obj *core.Object, sc *Ops, op core.OpNum, marshalArgs, unmarshalResults stubs.MarshalFunc, opts []core.CallOption) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := sc.rep(obj)
	if err != nil {
		return err
	}
	var info *kernel.Info
	if len(opts) > 0 {
		// Fabricate the context only when the caller supplied options; the
		// common context-free fast call stays allocation-identical.
		c := core.NewCall(op, opts...)
		info = c.Info()
		if err := c.Err(); err != nil {
			return err
		}
	}
	args := buffer.New(64)
	args.WriteUint32(uint32(op))
	if marshalArgs != nil {
		if err := marshalArgs(args); err != nil {
			kernel.ReleaseBufferDoors(args)
			return fmt.Errorf("doorsc: marshalling %s op %d: %w", obj.MT.Type, op, err)
		}
	}
	reply, err := obj.Env.Domain.CallInfo(r.H, args, info)
	if err != nil {
		return err
	}
	return stubs.DecodeReply(reply, unmarshalResults)
}
