package doorsc_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/singleton"
)

// get wraps the counter get() through the specialized path.
func fastGet(obj *core.Object) (int64, error) {
	var v int64
	err := doorsc.FastCall(obj, sctest.OpGet, nil, func(b *buffer.Buffer) error {
		var err error
		v, err = b.ReadInt64()
		return err
	})
	return v, err
}

func TestFastCallMatchesGeneralPath(t *testing.T) {
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 7); err != nil {
		t.Fatal(err)
	}
	// The specialized stub sees the same state.
	if v, err := fastGet(remote); err != nil || v != 7 {
		t.Fatalf("FastCall get = %d, %v", v, err)
	}
	// Remote exceptions survive the fast path unchanged.
	err = doorsc.FastCall(remote, sctest.OpBoom, nil, nil)
	if !stubs.IsRemote(err) {
		t.Fatalf("Boom via FastCall = %v, want remote exception", err)
	}
}

func TestFastCallFallsBackForOtherSubcontracts(t *testing.T) {
	k := kernel.New("m1")
	g := replicon.NewGroup()
	ctr := &sctest.Counter{}
	for i := 0; i < 2; i++ {
		env, err := sctest.NewEnv(k, fmt.Sprintf("replica%d", i), replicon.Register)
		if err != nil {
			t.Fatal(err)
		}
		g.Join(env, "r", ctr.Skeleton())
	}
	cli, err := sctest.NewEnv(k, "client", replicon.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj := g.Export(cli, sctest.CounterMT)

	// The specialized path must not apply (replicon needs its preamble
	// for the epoch control section); the fallback keeps it correct.
	if v, err := fastGet(obj); err != nil || v != 0 {
		t.Fatalf("FastCall on replicon = %d, %v", v, err)
	}
	if ctr.Calls() != 1 {
		t.Fatalf("server calls = %d", ctr.Calls())
	}
}

func TestQueryType(t *testing.T) {
	// The run-time type query of §5.1.6: the server-side subcontract code
	// answers with the exported dynamic type, without involving the
	// application skeleton.
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	typ, err := doorsc.QueryType(remote)
	if err != nil || typ != sctest.CounterType {
		t.Fatalf("QueryType = %q, %v", typ, err)
	}
	// The query left the application untouched.
	if ctr.Calls() != 0 {
		t.Fatalf("type query reached the skeleton: %d calls", ctr.Calls())
	}
	if _, err := doorsc.QueryType(nil); !errors.Is(err, core.ErrNilObject) {
		t.Fatalf("QueryType(nil) = %v", err)
	}
}

func TestFastCallConsumedAndNil(t *testing.T) {
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := singleton.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := fastGet(obj); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("FastCall on consumed = %v", err)
	}
	if err := doorsc.FastCall(nil, 0, nil, nil); !errors.Is(err, core.ErrNilObject) {
		t.Fatalf("FastCall(nil) = %v", err)
	}
}
