// Package doorsc implements the door-based client-side subcontract
// operations vector shared by the simple client-server subcontracts
// (singleton, simplex, and the remote side of others): the object's
// representation is a single kernel door identifier, marshal moves the
// identifier, invoke performs a door call.
//
// Distinct subcontracts instantiate Ops with their own identifier and
// name, so singleton and simplex remain distinct, compatible subcontracts
// even though their remote behaviour coincides (§6.1 / §7).
package doorsc

import (
	"fmt"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/trace"
)

// Rep is the representation of a door-based object: a single door
// identifier in the object's domain.
type Rep struct {
	H kernel.Handle
}

// Ops is a door-based client subcontract operations vector, parameterized
// by subcontract identity.
type Ops struct {
	Ident  core.ID
	SCName string

	// stats caches the scstats block interned under SCName, so the invoke
	// path never touches the registry. Lazily filled on first invoke
	// (interning is idempotent, so the publication race is benign).
	stats atomic.Pointer[scstats.Stats]

	// span caches the interned "<SCName>.invoke" trace span name, filled
	// on the first *traced* invoke (untraced calls never intern).
	span atomic.Uint32
}

var _ core.ClientOps = (*Ops)(nil)

// Stats returns the metrics block invocations through o report into.
func (o *Ops) Stats() *scstats.Stats {
	if s := o.stats.Load(); s != nil {
		return s
	}
	s := scstats.For(o.SCName)
	o.stats.Store(s)
	return s
}

// spanName returns the interned "<SCName>.invoke" span name. Only traced
// calls reach it; the intern happens once per Ops instance.
func (o *Ops) spanName() trace.NameID {
	if v := o.span.Load(); v != 0 {
		return trace.NameID(v)
	}
	id := trace.Name(o.SCName + ".invoke")
	o.span.Store(uint32(id))
	return id
}

// ID implements core.Subcontract.
func (o *Ops) ID() core.ID { return o.Ident }

// Name implements core.Subcontract.
func (o *Ops) Name() string { return o.SCName }

// rep extracts the door representation, guarding against foreign reps.
func (o *Ops) rep(obj *core.Object) (Rep, error) {
	r, ok := obj.Rep.(Rep)
	if !ok {
		return Rep{}, fmt.Errorf("%s: foreign representation %T", o.SCName, obj.Rep)
	}
	return r, nil
}

// Marshal writes the subcontract header and moves the door identifier into
// buf, then deletes the local object state (§5.1.1).
func (o *Ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := o.rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, o.Ident, obj.MT.Type)
	if err := obj.Env.Domain.MoveToBuffer(r.H, buf); err != nil {
		return fmt.Errorf("%s: marshal: %w", o.SCName, err)
	}
	return obj.MarkConsumed()
}

// MarshalCopy writes the header and a duplicated door identifier, leaving
// the original object usable (§5.1.5: the copy-then-marshal optimization —
// the intermediate object is never fabricated).
func (o *Ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := o.rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, o.Ident, obj.MT.Type)
	if err := obj.Env.Domain.CopyToBuffer(r.H, buf); err != nil {
		return fmt.Errorf("%s: marshal_copy: %w", o.SCName, err)
	}
	return nil
}

// Unmarshal fabricates an object from buf, dispatching to a compatible
// subcontract if the marshalled identifier is not o's own.
func (o *Ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, o.Ident); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, o.Ident)
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("%s: unmarshal: %w", o.SCName, err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, Rep{H: h}), nil
}

// InvokePreamble does nothing for the simple subcontracts (§7: "the
// simplex invoke_preamble does nothing and simply returns").
func (o *Ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	return obj.CheckLive()
}

// Invoke executes the call with the kernel's door invocation mechanism,
// passing the call's invocation context along so the kernel can refuse
// expired calls and network door servers can forward the remaining budget.
func (o *Ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	st := o.Stats()
	start := st.Begin()
	var sp trace.Span
	if info := call.Info(); trace.Traced(info) {
		sp = trace.Begin(info, o.spanName())
	}
	reply, err := o.invoke(obj, call)
	sp.End(call.Info(), err)
	st.EndCall(start, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

func (o *Ops) invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := o.rep(obj)
	if err != nil {
		return nil, err
	}
	return obj.Env.Domain.CallInfo(r.H, call.Args(), call.Info())
}

// Copy fabricates a shallow copy by asking the kernel to copy the door
// identifier (§7).
func (o *Ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := o.rep(obj)
	if err != nil {
		return nil, err
	}
	h, err := obj.Env.Domain.CopyDoor(r.H)
	if err != nil {
		return nil, fmt.Errorf("%s: copy: %w", o.SCName, err)
	}
	return core.NewObject(obj.Env, obj.MT, o, Rep{H: h}), nil
}

// Consume tells the kernel to delete the door identifier; when all
// identifiers for the server door are gone the kernel notifies the
// server's subcontract code so it can clean up (§7).
func (o *Ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := o.rep(obj)
	if err != nil {
		return err
	}
	if err := obj.Env.Domain.DeleteDoor(r.H); err != nil {
		return fmt.Errorf("%s: consume: %w", o.SCName, err)
	}
	return obj.MarkConsumed()
}

// typeQueryOp is the subcontract-internal operation implementing the
// run-time type query of §5.1.6: the incoming call arrives first in the
// server-side subcontract code, which answers it without involving the
// stubs.
const typeQueryOp = ^uint32(1) // 0xFFFFFFFE

// ServerProc returns a kernel door target that runs skel for each incoming
// call: the door delivers the call to the subcontract's server code, which
// answers subcontract-level queries itself and forwards everything else to
// the stub level (§5.2.2).
func ServerProc(skel stubs.Skeleton) kernel.ServerProcInfo {
	return ServerProcTyped("", skel)
}

// ServerProcTyped is ServerProc with the exported dynamic type wired in,
// so the door can answer remote type queries. The invocation context the
// kernel delivers is threaded to the stub level, where skeletons that
// implement stubs.InfoSkeleton can inherit the caller's remaining budget.
func ServerProcTyped(typ core.TypeID, skel stubs.Skeleton) kernel.ServerProcInfo {
	return func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		if op, err := req.PeekUint32(); err == nil && op == typeQueryOp {
			reply := buffer.New(16)
			reply.WriteString(string(typ))
			return reply, nil
		}
		// Drawn from the pool, sized by the request: replies tend to be
		// commensurate with their calls, and a pooled hit spares the
		// marshal loop's growth reallocation. A mis-sized hint only means
		// the buffer grows as it always did. The remote serve path (netd)
		// recycles the buffer after the reply ships; a local caller keeps
		// it, and the pool simply re-arms from the allocator.
		reply := buffer.Get(128 + req.Len())
		if err := stubs.ServeCallInfo(skel, req, reply, info); err != nil {
			return nil, err
		}
		return reply, nil
	}
}

// QueryType asks a door-based object's server for its dynamic type — the
// run-time type query of §5.1.6, answered by the server-side subcontract
// code rather than the application. It returns "" when the server
// predates typed exports.
func QueryType(obj *core.Object) (core.TypeID, error) {
	if obj == nil {
		return "", core.ErrNilObject
	}
	if err := obj.CheckLive(); err != nil {
		return "", err
	}
	r, ok := obj.Rep.(Rep)
	if !ok {
		return "", fmt.Errorf("doorsc: type query on foreign representation %T", obj.Rep)
	}
	req := buffer.New(8)
	req.WriteUint32(typeQueryOp)
	reply, err := obj.Env.Domain.Call(r.H, req)
	if err != nil {
		return "", err
	}
	defer kernel.ReleaseBufferDoors(reply)
	t, err := reply.ReadString()
	if err != nil {
		return "", err
	}
	return core.TypeID(t), nil
}

// Export creates a Spring object in env backed by skel (§5.2.1, the simple
// form: create a kernel door and fabricate a client-side object whose
// representation uses it). unref, if non-nil, runs when the last
// identifier for the door is deleted. The returned Door lets the server
// revoke the object (§5.2.3).
func (o *Ops) Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, unref func()) (*core.Object, *kernel.Door) {
	h, door := env.Domain.CreateDoorInfo(ServerProcTyped(mt.Type, skel), unref)
	return core.NewObject(env, mt, o, Rep{H: h}), door
}
