package video

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

// Video control interface: 0 info() -> fps; 1 play(); 2 pause().
const (
	opInfo core.OpNum = iota
	opPlay
	opPause
)

var videoMT = &core.MTable{Type: "spring.video_stream", DefaultSC: SCID, Ops: []string{"info", "play", "pause"}}

func init() {
	core.MustRegisterType("spring.video_stream", core.ObjectType)
	core.MustRegisterMTable(videoMT)
}

func controlSkeleton(src *Source, fps uint32) stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opInfo:
			results.WriteUint32(fps)
			return nil
		case opPlay:
			src.SetPlaying(true)
			return nil
		case opPause:
			src.SetPlaying(false)
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

func info(obj *core.Object) (uint32, error) {
	var fps uint32
	err := stubs.Call(obj, opInfo, nil, func(b *buffer.Buffer) error {
		var err error
		fps, err = b.ReadUint32()
		return err
	})
	return fps, err
}

func play(obj *core.Object) error  { return stubs.Call(obj, opPlay, nil, nil) }
func pause(obj *core.Object) error { return stubs.Call(obj, opPause, nil, nil) }

func setup(t *testing.T) (*Source, *core.Object, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "videoserver", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "viewer", Register)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource()
	obj, _ := Export(srv, videoMT, controlSkeleton(src, 30), src, nil)
	remote, err := sctest.Transfer(obj, cli, videoMT)
	if err != nil {
		t.Fatal(err)
	}
	return src, remote, cli
}

func TestControlOps(t *testing.T) {
	src, obj, _ := setup(t)
	if fps, err := info(obj); err != nil || fps != 30 {
		t.Fatalf("info = %d, %v", fps, err)
	}
	if err := play(obj); err != nil {
		t.Fatal(err)
	}
	if !src.Playing() {
		t.Fatal("play did not reach source")
	}
	if err := pause(obj); err != nil {
		t.Fatal(err)
	}
	if src.Playing() {
		t.Fatal("pause did not reach source")
	}
}

func TestFramesFlow(t *testing.T) {
	src, obj, _ := setup(t)
	if src.Attached() != 1 {
		t.Fatalf("attached = %d, want 1 (unmarshal negotiates the channel)", src.Attached())
	}
	if err := play(obj); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		src.PushFrame([]byte(fmt.Sprintf("frame-%d", i)))
	}
	for i := 0; i < 5; i++ {
		f, err := Receive(obj)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("frame-%d", i); string(f.Payload) != want {
			t.Fatalf("frame %d payload = %q, want %q", i, f.Payload, want)
		}
		if f.Seq != uint32(i+1) {
			t.Fatalf("frame %d seq = %d", i, f.Seq)
		}
	}
	if Lost(obj) != 0 {
		t.Fatalf("lost = %d on lossless channel", Lost(obj))
	}
}

func TestPausedSourceSendsNothing(t *testing.T) {
	src, obj, _ := setup(t)
	src.PushFrame([]byte("x")) // paused: dropped at source
	if err := play(obj); err != nil {
		t.Fatal(err)
	}
	src.PushFrame([]byte("y"))
	f, err := Receive(obj)
	if err != nil || string(f.Payload) != "y" {
		t.Fatalf("first received frame = %q, %v", f.Payload, err)
	}
}

func TestLossDetectedBySequenceGaps(t *testing.T) {
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "videoserver", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "viewer", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli.Set(DropVar, 3) // lossy link: every 3rd packet dropped
	src := NewSource()
	obj, _ := Export(srv, videoMT, controlSkeleton(src, 30), src, nil)
	remote, err := sctest.Transfer(obj, cli, videoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := play(remote); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		src.PushFrame([]byte{byte(i)})
	}
	got := 0
	for got < 6 {
		if _, err := Receive(remote); err != nil {
			t.Fatal(err)
		}
		got++
	}
	// Packets 3, 6 and 9 were dropped; the gap after 9 is invisible until
	// a later frame arrives, so two losses are detectable here.
	if lost := Lost(remote); lost != 2 {
		t.Fatalf("lost = %d, want 2 (seq gaps from the lossy wire)", lost)
	}
	src.PushFrame([]byte{10})
	if _, err := Receive(remote); err != nil {
		t.Fatal(err)
	}
	if lost := Lost(remote); lost != 3 {
		t.Fatalf("lost after next frame = %d, want 3 (tail gap now visible)", lost)
	}
}

func TestTwoViewers(t *testing.T) {
	src, obj, cli := setup(t)
	second, err := obj.Copy()
	if err != nil {
		t.Fatal(err)
	}
	_ = cli
	if src.Attached() != 2 {
		t.Fatalf("attached = %d, want 2", src.Attached())
	}
	if err := play(obj); err != nil {
		t.Fatal(err)
	}
	src.PushFrame([]byte("both"))
	for i, o := range []*core.Object{obj, second} {
		f, err := Receive(o)
		if err != nil || string(f.Payload) != "both" {
			t.Fatalf("viewer %d: %q, %v", i, f.Payload, err)
		}
	}
}

func TestConsumeDetaches(t *testing.T) {
	src, obj, _ := setup(t)
	if err := play(obj); err != nil {
		t.Fatal(err)
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := Receive(obj); !errors.Is(err, ErrDetached) {
		t.Fatalf("Receive after consume = %v", err)
	}
	// The source prunes the closed channel on its next broadcast.
	src.PushFrame([]byte("z"))
	if src.Attached() != 0 {
		t.Fatalf("attached = %d after consume + push", src.Attached())
	}
}

func TestMarshalMovesViewpoint(t *testing.T) {
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "videoserver", Register)
	if err != nil {
		t.Fatal(err)
	}
	cliA, err := sctest.NewEnv(k, "viewerA", Register)
	if err != nil {
		t.Fatal(err)
	}
	cliB, err := sctest.NewEnv(k, "viewerB", Register)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource()
	obj, _ := Export(srv, videoMT, controlSkeleton(src, 30), src, nil)
	ra, err := sctest.Transfer(obj, cliA, videoMT)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sctest.Transfer(ra, cliB, videoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := play(rb); err != nil {
		t.Fatal(err)
	}
	src.PushFrame([]byte("only-b"))
	if f, err := Receive(rb); err != nil || string(f.Payload) != "only-b" {
		t.Fatalf("B: %q, %v", f.Payload, err)
	}
	if _, err := Receive(ra); !errors.Is(err, ErrDetached) {
		t.Fatalf("A after move = %v, want ErrDetached", err)
	}
}
