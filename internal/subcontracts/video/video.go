// Package video implements the video subcontract sketched in §8.4: "a
// subcontract that lets video objects encapsulate a specific network
// packet protocol for live video."
//
// Control operations (play, pause, info) travel over an ordinary kernel
// door; the frames themselves ride a private packet protocol over a lossy
// datagram channel that the subcontract negotiates underneath the covers.
// When a video object is unmarshalled, the client-side subcontract creates
// a receive channel and attaches it to the source with a subcontract-
// internal door call; application code just invokes ordinary IDL
// operations and asks the object for frames. Frames may be lost on the
// wire — the packet protocol numbers them so the receiver detects gaps —
// which is exactly why this traffic cannot ride the reliable RPC path.
package video

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dgram"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/trace"
)

// SCID is the video subcontract identifier.
const SCID core.ID = 10

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "video.so"

// attachOp is the subcontract-internal operation number used to negotiate
// the frame channel. It sits far above any stub-level operation.
const attachOp = ^uint32(0)

// Channel sizing defaults; a domain can override with the env slots.
const (
	defaultCapacity = 64
	// CapacityVar and DropVar are environment slots (ints) tuning the
	// receive channel fabricated at unmarshal.
	CapacityVar = "video.capacity"
	DropVar     = "video.dropevery"
)

// ErrDetached is returned by Receive after the object was consumed or
// marshalled away.
var ErrDetached = errors.New("video: frame channel detached")

// Frame is one received video frame.
type Frame struct {
	Seq     uint32
	Payload []byte
}

// encodeFrame builds the packet protocol's wire form.
func encodeFrame(seq uint32, payload []byte) []byte {
	p := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(p, seq)
	copy(p[4:], payload)
	return p
}

// decodeFrame parses a packet.
func decodeFrame(p []byte) (Frame, error) {
	if len(p) < 4 {
		return Frame{}, fmt.Errorf("video: short packet (%d bytes)", len(p))
	}
	return Frame{Seq: binary.LittleEndian.Uint32(p), Payload: p[4:]}, nil
}

// Rep is the representation: the control door plus the attached frame
// channel and gap-detection state.
type Rep struct {
	mu      sync.Mutex
	h       kernel.Handle
	ch      *dgram.Channel
	lastSeq uint32
	gotAny  bool
	lost    uint64
}

type ops struct{}

// SC is the video subcontract.
var SC core.ClientOps = ops{}

// Register is the library entry point installing video in a registry.
func Register(r *core.Registry) error { return r.Register(SC) }

func (ops) ID() core.ID  { return SCID }
func (ops) Name() string { return "video" }

// stats is the subcontract's metrics block (control-path calls only;
// frames bypass invocation entirely).
var stats = scstats.For("video")

func rep(obj *core.Object) (*Rep, error) {
	r, ok := obj.Rep.(*Rep)
	if !ok {
		return nil, fmt.Errorf("video: foreign representation %T", obj.Rep)
	}
	return r, nil
}

// Marshal moves the control door; the frame channel is machine-local
// state, closed and discarded like the rest of the local state.
func (ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	if err := obj.Env.Domain.MoveToBuffer(r.h, buf); err != nil {
		return fmt.Errorf("video: marshal: %w", err)
	}
	if r.ch != nil {
		r.ch.Close()
		r.ch = nil
	}
	return obj.MarkConsumed()
}

func (ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	if err := obj.Env.Domain.CopyToBuffer(r.h, buf); err != nil {
		return fmt.Errorf("video: marshal_copy: %w", err)
	}
	return nil
}

// Unmarshal adopts the control door and negotiates a frame channel with
// the source through the subcontract-internal attach call.
func (o ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("video: unmarshal: %w", err)
	}
	r := &Rep{h: h}
	if err := attach(env, r); err != nil {
		_ = env.Domain.DeleteDoor(h)
		return nil, err
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, r), nil
}

// attach fabricates the receive channel and registers it with the source.
func attach(env *core.Env, r *Rep) error {
	capacity, drop := defaultCapacity, 0
	if v, ok := env.Get(CapacityVar); ok {
		if n, ok := v.(int); ok {
			capacity = n
		}
	}
	if v, ok := env.Get(DropVar); ok {
		if n, ok := v.(int); ok {
			drop = n
		}
	}
	ch := dgram.New(capacity, drop)
	req := buffer.New(16)
	req.WriteUint32(attachOp)
	req.WriteDoor(ch)
	reply, err := env.Domain.Call(r.h, req)
	if err != nil {
		return fmt.Errorf("video: attaching frame channel: %w", err)
	}
	kernel.ReleaseBufferDoors(reply)
	r.mu.Lock()
	r.ch = ch
	r.mu.Unlock()
	return nil
}

func (ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	return obj.CheckLive()
}

func (ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := stats.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := invoke(obj, call)
	sp.End(call.Info(), err)
	stats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

var spanInvoke = trace.Name("video.invoke")

func invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	return obj.Env.Domain.CallInfo(r.h, call.Args(), call.Info())
}

// Copy duplicates the control door and attaches a fresh frame channel for
// the new object.
func (o ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	h, err := obj.Env.Domain.CopyDoor(r.h)
	if err != nil {
		return nil, fmt.Errorf("video: copy: %w", err)
	}
	nr := &Rep{h: h}
	if err := attach(obj.Env, nr); err != nil {
		_ = obj.Env.Domain.DeleteDoor(h)
		return nil, err
	}
	return core.NewObject(obj.Env, obj.MT, o, nr), nil
}

func (ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.ch != nil {
		r.ch.Close()
		r.ch = nil
	}
	h := r.h
	r.h = 0
	r.mu.Unlock()
	if h != 0 {
		_ = obj.Env.Domain.DeleteDoor(h)
	}
	return obj.MarkConsumed()
}

// Receive blocks for the next frame, transparently skipping wire loss; it
// accounts lost frames by sequence-number gaps (Lost).
func Receive(obj *core.Object) (Frame, error) {
	r, err := rep(obj)
	if err != nil {
		return Frame{}, err
	}
	r.mu.Lock()
	ch := r.ch
	r.mu.Unlock()
	if ch == nil {
		return Frame{}, ErrDetached
	}
	p, ok := ch.Recv()
	if !ok {
		return Frame{}, ErrDetached
	}
	f, err := decodeFrame(p)
	if err != nil {
		return Frame{}, err
	}
	r.mu.Lock()
	if r.gotAny && f.Seq > r.lastSeq+1 {
		r.lost += uint64(f.Seq - r.lastSeq - 1)
	}
	r.gotAny = true
	r.lastSeq = f.Seq
	r.mu.Unlock()
	return f, nil
}

// Lost reports how many frames were detected missing by sequence gaps.
func Lost(obj *core.Object) uint64 {
	r, err := rep(obj)
	if err != nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lost
}

// ---------------------------------------------------------------------
// Server side: the video source.

// Source is a live video source: it pushes numbered frames to all attached
// channels while playing, and serves control operations through the stub
// level.
type Source struct {
	mu       sync.Mutex
	channels []*dgram.Channel
	playing  bool
	seq      uint32
}

// NewSource returns a paused source.
func NewSource() *Source { return &Source{} }

// Playing reports whether the source is currently streaming.
func (s *Source) Playing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.playing
}

// SetPlaying starts or stops streaming (the play/pause control ops call
// this).
func (s *Source) SetPlaying(on bool) {
	s.mu.Lock()
	s.playing = on
	s.mu.Unlock()
}

// Attached reports the number of live frame channels.
func (s *Source) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.channels)
}

// PushFrame broadcasts one frame to every attached viewer, pruning closed
// channels. It is a no-op while paused.
func (s *Source) PushFrame(payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.playing {
		return
	}
	s.seq++
	pkt := encodeFrame(s.seq, payload)
	live := s.channels[:0]
	for _, ch := range s.channels {
		if ch.Closed() {
			continue
		}
		ch.Send(pkt)
		live = append(live, ch)
	}
	s.channels = live
}

// Export creates a video Spring object in env: control operations are
// served by skel, frames stream from src.
func Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, src *Source, unref func()) (*core.Object, *kernel.Door) {
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		op, err := req.PeekUint32()
		if err != nil {
			return nil, err
		}
		if op == attachOp {
			_, _ = req.ReadUint32()
			slot, err := req.ReadDoor()
			if err != nil {
				return nil, fmt.Errorf("video: attach without channel: %w", err)
			}
			ch, ok := slot.(*dgram.Channel)
			if !ok {
				return nil, fmt.Errorf("video: attach slot holds %T", slot)
			}
			src.mu.Lock()
			src.channels = append(src.channels, ch)
			src.mu.Unlock()
			return buffer.New(0), nil
		}
		reply := buffer.New(64)
		if err := stubs.ServeCallInfo(skel, req, reply, info); err != nil {
			return nil, err
		}
		return reply, nil
	}
	h, door := env.Domain.CreateDoorInfo(proc, unref)
	r := &Rep{h: h}
	return core.NewObject(env, mt, SC, r), door
}
