package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/scstats"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
	"repro/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func startPlane(t *testing.T) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// twoMachineCall builds two in-process netd "machines", exports a counter
// on A, imports it on B, and runs one traced call across the wire. It
// returns the trace ID.
func twoMachineCall(t *testing.T) uint64 {
	t.Helper()
	kA := kernel.New("mA")
	netA, err := netd.Start(kA.NewDomain("mA-netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netA.Close() })
	kB := kernel.New("mB")
	netB, err := netd.Start(kB.NewDomain("mB-netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netB.Close() })

	envA, err := sctest.NewEnv(kA, "mA-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(envA, sctest.CounterMT, ctr.Skeleton(), nil)
	netA.PublishRoot("ctr", obj)

	envB, err := sctest.NewEnv(kB, "mB-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := netB.ImportRootObject(envB, netA.Addr(), "ctr", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	traceID := trace.NewTraceID()
	if _, err := sctest.Add(remote, 3, core.WithTrace(traceID)); err != nil {
		t.Fatal(err)
	}
	return traceID
}

// TestTwoMachineTraceVisible is the PR's acceptance case: one traced call
// between two in-process netd machines produces a single trace with at
// least 4 spans covering both sides, served by /traces/{id}.
func TestTwoMachineTraceVisible(t *testing.T) {
	trace.Reset()
	t.Cleanup(trace.Reset)
	s := startPlane(t)
	traceID := twoMachineCall(t)

	code, body := get(t, fmt.Sprintf("http://%s/traces/%016x", s.Addr(), traceID))
	if code != http.StatusOK {
		t.Fatalf("/traces/{id}: status %d, body %s", code, body)
	}
	var roots []struct {
		Trace    string `json:"trace"`
		Name     string `json:"name"`
		Children []json.RawMessage
	}
	if err := json.Unmarshal([]byte(body), &roots); err != nil {
		t.Fatalf("/traces/{id} not JSON: %v\n%s", err, body)
	}

	// Count spans and names via the flat Collect, asserting both sides of
	// the wire were captured in one tree.
	spans := trace.Collect(traceID)
	if len(spans) < 4 {
		t.Fatalf("trace has %d spans, want ≥4: %+v", len(spans), spans)
	}
	names := map[string]bool{}
	for _, sd := range spans {
		names[sd.Name] = true
	}
	for _, want := range []string{"singleton.invoke", "netd.send", "netd.serve", "skeleton", "netd.reply"} {
		if !names[want] {
			t.Errorf("trace missing span %q; have %v", want, names)
		}
	}

	// The tree must nest the server-side serve span under the client-side
	// send span (the wire carried the span identity across machines).
	parentOf := map[string]string{}
	var rec func(parent string, raw json.RawMessage)
	rec = func(parent string, raw json.RawMessage) {
		var n struct {
			Name     string            `json:"name"`
			Children []json.RawMessage `json:"children"`
		}
		if err := json.Unmarshal(raw, &n); err != nil {
			t.Fatal(err)
		}
		parentOf[n.Name] = parent
		for _, c := range n.Children {
			rec(n.Name, c)
		}
	}
	var rawRoots []json.RawMessage
	if err := json.Unmarshal([]byte(body), &rawRoots); err != nil {
		t.Fatal(err)
	}
	for _, r := range rawRoots {
		rec("", r)
	}
	if parentOf["netd.serve"] != "netd.send" {
		t.Errorf("netd.serve's parent = %q, want netd.send (parents: %v)", parentOf["netd.serve"], parentOf)
	}
	if parentOf["skeleton"] != "netd.serve" {
		t.Errorf("skeleton's parent = %q, want netd.serve", parentOf["skeleton"])
	}

	// The text waterfall renders too.
	code, text := get(t, fmt.Sprintf("http://%s/traces/%016x?format=text", s.Addr(), traceID))
	if code != http.StatusOK || !strings.Contains(text, "netd.serve") {
		t.Errorf("text waterfall: status %d\n%s", code, text)
	}

	// And /traces lists the root.
	code, listing := get(t, fmt.Sprintf("http://%s/traces", s.Addr()))
	if code != http.StatusOK || !strings.Contains(listing, fmt.Sprintf("%016x", traceID)) {
		t.Errorf("/traces missing trace %016x: status %d\n%s", traceID, code, listing)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	trace.Reset()
	t.Cleanup(trace.Reset)
	s := startPlane(t)
	twoMachineCall(t) // generate netd + singleton traffic and gauges

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	// Every counter family is present.
	for _, fam := range counterFamilies {
		if !strings.Contains(body, "# TYPE "+fam.name+" counter") {
			t.Errorf("/metrics missing family %s", fam.name)
		}
	}
	// Labelled counters for the subcontracts the call exercised.
	for _, want := range []string{
		`subcontract_calls_total{subcontract="netd"}`,
		`subcontract_calls_total{subcontract="netd(serve)"}`,
		`subcontract_calls_total{subcontract="singleton"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing series %s", want)
		}
	}
	// Histogram exposition with sum/count and +Inf bound.
	for _, want := range []string{
		"# TYPE subcontract_latency_seconds histogram",
		`subcontract_latency_seconds_bucket{subcontract="netd",le="+Inf"}`,
		`subcontract_latency_seconds_sum{subcontract="netd"}`,
		`subcontract_latency_seconds_count{subcontract="netd"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// Level gauges appear under sanitized names, even when zero.
	for _, want := range []string{"netd_conns_live", "netd_sessions_live"} {
		if !strings.Contains(body, "# TYPE "+want+" gauge") {
			t.Errorf("/metrics missing gauge %s", want)
		}
	}
	// Monotonic event counts get counter conventions (_total suffix).
	for _, want := range []string{"netd_breaker_opened_total", "netd_leases_expired_total"} {
		if !strings.Contains(body, "# TYPE "+want+" counter") {
			t.Errorf("/metrics missing counter-convention gauge %s", want)
		}
	}
	// Every interned counter block is exposed (AllSnapshots contract).
	for _, sn := range scstats.AllSnapshots() {
		if !strings.Contains(body, fmt.Sprintf("subcontract_calls_total{subcontract=%q}", sn.Name)) {
			t.Errorf("/metrics missing interned subcontract %q", sn.Name)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	s := startPlane(t)
	twoMachineCall(t)

	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d, body %s", code, body)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if h["status"] != "ok" {
		t.Errorf("/healthz status = %v, want ok (%s)", h["status"], body)
	}
	for _, key := range []string{"conns_live", "sessions_live", "exports_live", "breakers_open", "leases_expired"} {
		if _, present := h[key]; !present {
			t.Errorf("/healthz missing %q: %s", key, body)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	s := startPlane(t)
	code, body := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d", code)
	}
	code, _ = get(t, "http://"+s.Addr()+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine: status %d", code)
	}
}

func TestTraceNotFound(t *testing.T) {
	s := startPlane(t)
	if code, _ := get(t, "http://"+s.Addr()+"/traces/00000000deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/traces/nothex"); code != http.StatusBadRequest {
		t.Errorf("bad trace id: status %d, want 400", code)
	}
}
