package telemetry

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/scstats"
)

// The Prometheus text exposition of the scstats registry.
//
// Per-subcontract counters become one metric family each, labelled by
// subcontract, so a single scrape config covers every subcontract ever
// instrumented:
//
//	subcontract_calls_total{subcontract="netd"} 1234
//
// The sampled latency histogram becomes a conventional Prometheus
// histogram (cumulative le buckets in seconds, _sum, _count). Named
// gauges keep their names with the dots swapped for underscores:
// netd.conns_live → netd_conns_live.

// counterFamilies maps each scstats counter to its metric name and help
// string, in exposition order.
var counterFamilies = []struct {
	name string
	help string
	get  func(scstats.Snapshot) uint64
}{
	{"subcontract_calls_total", "Invocations started through the subcontract.",
		func(s scstats.Snapshot) uint64 { return s.Calls }},
	{"subcontract_errors_total", "Invocations that returned an error.",
		func(s scstats.Snapshot) uint64 { return s.Errors }},
	{"subcontract_deadline_exceeded_total", "Errors that were context deadline endings.",
		func(s scstats.Snapshot) uint64 { return s.DeadlineExceeded }},
	{"subcontract_cancelled_total", "Errors that were caller cancellations.",
		func(s scstats.Snapshot) uint64 { return s.Cancelled }},
	{"subcontract_retries_total", "Calls re-issued after a retry-safe failure.",
		func(s scstats.Snapshot) uint64 { return s.Retries }},
	{"subcontract_failovers_total", "Replica switches (replicon).",
		func(s scstats.Snapshot) uint64 { return s.Failovers }},
	{"subcontract_reconnects_total", "Binding re-resolutions (reconnectable).",
		func(s scstats.Snapshot) uint64 { return s.Reconnects }},
	{"subcontract_cache_hits_total", "Calls served from a local cache.",
		func(s scstats.Snapshot) uint64 { return s.Hits }},
	{"subcontract_cache_misses_total", "Cacheable calls forwarded to the server.",
		func(s scstats.Snapshot) uint64 { return s.Misses }},
	{"subcontract_cache_coalesced_total", "Misses that shared another caller's in-flight server call.",
		func(s scstats.Snapshot) uint64 { return s.Coalesced }},
}

// writeMetrics renders the whole registry.
func writeMetrics(w io.Writer) {
	sns := scstats.AllSnapshots()

	for _, fam := range counterFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
		for _, sn := range sns {
			fmt.Fprintf(w, "%s{subcontract=%q} %d\n", fam.name, sn.Name, fam.get(sn))
		}
	}

	// The sampled latency histogram. Bucket i of scstats covers
	// [2^i, 2^(i+1)) ns; Prometheus wants cumulative counts keyed by the
	// inclusive upper bound in seconds.
	const hist = "subcontract_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Sampled invocation latency (1 in 8 calls).\n# TYPE %s histogram\n", hist, hist)
	for _, sn := range sns {
		var cum uint64
		for i, c := range sn.Buckets {
			cum += c
			if c == 0 && i != len(sn.Buckets)-1 {
				// Sparse exposition: only emit bounds where the count
				// changed (plus +Inf below); cumulative semantics are
				// preserved for any scraper summing adjacent bounds.
				continue
			}
			le := float64(uint64(2)<<i) / 1e9 // upper bound of bucket i, seconds
			fmt.Fprintf(w, "%s_bucket{subcontract=%q,le=%q} %d\n", hist, sn.Name, formatFloat(le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{subcontract=%q,le=\"+Inf\"} %d\n", hist, sn.Name, sn.LatencySamples)
		fmt.Fprintf(w, "%s_sum{subcontract=%q} %s\n", hist, sn.Name, formatFloat(sn.LatencySum.Seconds()))
		fmt.Fprintf(w, "%s_count{subcontract=%q} %d\n", hist, sn.Name, sn.LatencySamples)
	}

	// Named gauges, every one, zeros included (a level returning to zero
	// must not vanish from the scrape).
	for _, g := range scstats.AllGauges() {
		name := sanitizeMetricName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
}

// sanitizeMetricName maps a gauge name to the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float as a Go-syntax literal, which the
// Prometheus text format accepts (exponents included — nanosecond bucket
// bounds in seconds need them).
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
