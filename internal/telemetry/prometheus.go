package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/scstats"
	"repro/internal/trace"
)

// The Prometheus text exposition of the scstats registry.
//
// Per-subcontract counters become one metric family each, labelled by
// subcontract, so a single scrape config covers every subcontract ever
// instrumented:
//
//	subcontract_calls_total{subcontract="netd"} 1234
//
// The always-on latency histograms become conventional Prometheus
// histograms (cumulative le buckets in seconds, _sum, _count), with one
// extension: buckets that remember a traced call carry an
// OpenMetrics-style exemplar suffix linking to /traces/{id}:
//
//	subcontract_latency_seconds_bucket{subcontract="netd",le="0.001"} 41 # {trace_id="4f1d..."} 0.00083
//
// (Strict 0.0.4 text-format parsers do not accept exemplars; this plane's
// own consumers — sctop, make obs — do, and per-op detail deliberately
// lives in /statz rather than /metrics to keep scrape cardinality at one
// aggregate histogram per subcontract plus one per peer.)
//
// Named gauges keep their names with the dots swapped for underscores
// (netd.conns_live → netd_conns_live) — except that gauges which are
// really monotonic event counts are exposed with Prometheus counter
// conventions: TYPE counter and a _total suffix (netd.leases_expired →
// netd_leases_expired_total).

// counterFamilies maps each scstats counter to its metric name and help
// string, in exposition order.
var counterFamilies = []struct {
	name string
	help string
	get  func(scstats.Snapshot) uint64
}{
	{"subcontract_calls_total", "Invocations started through the subcontract.",
		func(s scstats.Snapshot) uint64 { return s.Calls }},
	{"subcontract_errors_total", "Invocations that returned an error.",
		func(s scstats.Snapshot) uint64 { return s.Errors }},
	{"subcontract_deadline_exceeded_total", "Errors that were context deadline endings.",
		func(s scstats.Snapshot) uint64 { return s.DeadlineExceeded }},
	{"subcontract_cancelled_total", "Errors that were caller cancellations.",
		func(s scstats.Snapshot) uint64 { return s.Cancelled }},
	{"subcontract_retries_total", "Calls re-issued after a retry-safe failure.",
		func(s scstats.Snapshot) uint64 { return s.Retries }},
	{"subcontract_failovers_total", "Replica switches (replicon).",
		func(s scstats.Snapshot) uint64 { return s.Failovers }},
	{"subcontract_reconnects_total", "Binding re-resolutions (reconnectable).",
		func(s scstats.Snapshot) uint64 { return s.Reconnects }},
	{"subcontract_cache_hits_total", "Calls served from a local cache.",
		func(s scstats.Snapshot) uint64 { return s.Hits }},
	{"subcontract_cache_misses_total", "Cacheable calls forwarded to the server.",
		func(s scstats.Snapshot) uint64 { return s.Misses }},
	{"subcontract_cache_coalesced_total", "Misses that shared another caller's in-flight server call.",
		func(s scstats.Snapshot) uint64 { return s.Coalesced }},
}

// counterGauges lists the named gauges that are monotonic event counts in
// disguise; the exposition gives them counter conventions (_total, TYPE
// counter). Every other gauge is a level and stays a gauge.
var counterGauges = map[string]bool{
	"cache.coalesced_misses":  true,
	"cache.evictions":         true,
	"dispatch.inline_hits":    true,
	"dispatch.shed":           true,
	"dispatch.stolen":         true,
	"netd.breaker_closed":     true,
	"netd.breaker_opened":     true,
	"netd.bulk_granted":       true,
	"netd.bulk_mapped":        true,
	"netd.bulk_reclaimed":     true,
	"netd.flushes":            true,
	"netd.frames_coalesced":   true,
	"netd.leases_expired":     true,
	"netd.refs_reclaimed":     true,
	"netd.releases_replayed":  true,
	"wal.appends":             true,
	"wal.compactions":         true,
	"wal.records_replayed":    true,
	"wal.syncs":               true,
	"wal.torn_tails_truncated": true,
}

// writeMetrics renders the whole registry.
func writeMetrics(w io.Writer) {
	sns := scstats.AllSnapshots()

	for _, fam := range counterFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
		for _, sn := range sns {
			fmt.Fprintf(w, "%s{subcontract=%q} %d\n", fam.name, sn.Name, fam.get(sn))
		}
	}

	// The always-on latency histogram, aggregated per subcontract (per-op
	// detail is served by /statz).
	const hist = "subcontract_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Invocation latency over every call (always-on HDR buckets; bucket exemplars carry the last traced call).\n# TYPE %s histogram\n", hist, hist)
	for _, sn := range sns {
		writeHistRow(w, hist, fmt.Sprintf("subcontract=%q", sn.Name), sn.Lat)
	}

	// Per-peer RED from netd's forward path.
	peers := scstats.PeerSnapshots()
	fmt.Fprintf(w, "# HELP netd_peer_calls_total Calls forwarded to the peer.\n# TYPE netd_peer_calls_total counter\n")
	for _, p := range peers {
		fmt.Fprintf(w, "netd_peer_calls_total{peer=%q} %d\n", p.Addr, p.Calls)
	}
	fmt.Fprintf(w, "# HELP netd_peer_errors_total Forwarded calls that returned an error.\n# TYPE netd_peer_errors_total counter\n")
	for _, p := range peers {
		fmt.Fprintf(w, "netd_peer_errors_total{peer=%q} %d\n", p.Addr, p.Errors)
	}
	fmt.Fprintf(w, "# HELP netd_peer_latency_seconds Forwarded-call latency per peer.\n# TYPE netd_peer_latency_seconds histogram\n")
	for _, p := range peers {
		writeHistRow(w, "netd_peer_latency_seconds", fmt.Sprintf("peer=%q", p.Addr), p.Lat)
	}

	// Named histograms (dispatch queue delay, cache miss fill, ...).
	for _, nh := range scstats.HistSnapshots() {
		name := sanitizeMetricName(nh.Name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		writeHistRow(w, name, "", nh.Hist)
	}

	// Tail-capture accounting from the trace layer.
	ts := trace.TailStats()
	for _, c := range []struct {
		name string
		help string
		v    uint64
	}{
		{"trace_tail_armed_total", "Speculative tail-capture traces started.", ts.Armed},
		{"trace_tail_committed_total", "Speculative traces that ran slow and were kept.", ts.Committed},
		{"trace_tail_abandoned_total", "Speculative traces that ran fast and were dropped.", ts.Abandoned},
		{"trace_tail_declined_total", "Tail-capture arms refused (buffer shard full).", ts.Declined},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}

	// Named gauges, every one, zeros included (a level returning to zero
	// must not vanish from the scrape). Monotonic event counts get counter
	// conventions.
	for _, g := range scstats.AllGauges() {
		name := sanitizeMetricName(g.Name)
		if counterGauges[g.Name] {
			fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, g.Value)
		} else {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
		}
	}
}

// writeHistRow emits one histogram series set — cumulative le buckets in
// seconds (with exemplar suffixes where a bucket remembers a traced
// call), +Inf, _sum and _count. labels is the label list without le
// ("" for an unlabelled family).
func writeHistRow(w io.Writer, name, labels string, h scstats.HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	var infEx string
	for _, b := range h.Buckets {
		cum += b.Count
		ex := ""
		if b.ExTrace != 0 {
			ex = fmt.Sprintf(" # {trace_id=\"%016x\"} %s", b.ExTrace, formatFloat(float64(b.ExNs)/1e9))
		}
		if b.Hi == math.MaxInt64 {
			infEx = ex // the catch-all bucket is the +Inf line
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d%s\n",
			name, labels, sep, formatFloat(float64(b.Hi)/1e9), cum, ex)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d%s\n", name, labels, sep, h.Count, infEx)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(float64(h.SumNs)/1e9))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.SumNs)/1e9))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

// sanitizeMetricName maps a gauge name to the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float as a Go-syntax literal, which the
// Prometheus text format accepts (exponents included — nanosecond bucket
// bounds in seconds need them).
func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
