package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/scstats"
)

// sampleAt builds an empty sample with only a timestamp — enough for the
// ring's ordering logic.
func sampleAt(at time.Time) statzSample { return statzSample{at: at} }

func TestStatzRingBeforeAcrossWraparound(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := newStatzRing(3, t0)

	if _, ok := r.before(t0); ok {
		t.Fatal("empty ring returned a sample")
	}

	// Push 5 samples at t0+1s .. t0+5s into a capacity-3 ring: the ring
	// now holds t0+3s, t0+4s, t0+5s with its write cursor wrapped.
	for i := 1; i <= 5; i++ {
		r.push(sampleAt(t0.Add(time.Duration(i) * time.Second)))
	}

	// A cutoff between stored samples picks the newest at-or-before it.
	s, ok := r.before(t0.Add(4500 * time.Millisecond))
	if !ok || !s.at.Equal(t0.Add(4*time.Second)) {
		t.Errorf("before(t0+4.5s) = %v, want t0+4s", s.at)
	}
	// A cutoff past everything picks the newest sample.
	s, _ = r.before(t0.Add(time.Hour))
	if !s.at.Equal(t0.Add(5 * time.Second)) {
		t.Errorf("before(+1h) = %v, want t0+5s", s.at)
	}
	// An exact-match cutoff is inclusive.
	s, _ = r.before(t0.Add(3 * time.Second))
	if !s.at.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("before(t0+3s) = %v, want t0+3s (inclusive)", s.at)
	}
	// A cutoff older than everything stored clamps to the oldest
	// surviving sample (t0+1s and t0+2s were overwritten).
	s, ok = r.before(t0)
	if !ok || !s.at.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("before(t0) = %v ok=%v, want clamp to t0+3s", s.at, ok)
	}
}

// synthLat builds a consistent HistSnapshot: count calls all in one
// bucket [lo, hi).
func synthLat(lo, hi int64, count uint64) scstats.HistSnapshot {
	return scstats.HistSnapshot{
		Count: count,
		SumNs: int64(count) * (lo + hi) / 2,
		Buckets: []scstats.HistBucket{
			{Lo: lo, Hi: hi, Count: count},
		},
	}
}

func TestStatzDeltaWindowMath(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	prev := statzSample{
		at: t0,
		scs: []scstats.Snapshot{
			{Name: "busy", Calls: 100, Errors: 2, Lat: synthLat(1000, 2000, 100)},
			{Name: "idle", Calls: 7, Lat: synthLat(1000, 2000, 7)},
		},
		peers: []scstats.PeerSnapshot{
			{Addr: "10.0.0.1:700", Calls: 50, Lat: synthLat(1000, 2000, 50)},
		},
		hists: []scstats.NamedHistSnapshot{
			{Name: "dispatch.queue_delay", Hist: synthLat(100, 200, 10)},
		},
	}
	cur := statzSample{
		at: t0.Add(10 * time.Second),
		scs: []scstats.Snapshot{
			{Name: "busy", Calls: 150, Errors: 3, Lat: synthLat(1000, 2000, 150)},
			{Name: "idle", Calls: 7, Lat: synthLat(1000, 2000, 7)},
			{Name: "fresh", Calls: 20, Lat: synthLat(1000, 2000, 20)},
		},
		peers: []scstats.PeerSnapshot{
			{Addr: "10.0.0.1:700", Calls: 80, Lat: synthLat(1000, 2000, 80)},
		},
		hists: []scstats.NamedHistSnapshot{
			{Name: "dispatch.queue_delay", Hist: synthLat(100, 200, 25)},
		},
	}

	resp := statzDelta(cur, prev, 10, true)
	if resp.WindowSeconds != 10 {
		t.Errorf("WindowSeconds = %v", resp.WindowSeconds)
	}
	bySC := map[string]statzSC{}
	for _, sc := range resp.Subcontracts {
		bySC[sc.Name] = sc
	}
	if _, there := bySC["idle"]; there {
		t.Error("idle subcontract (no delta) should be filtered out")
	}
	busy := bySC["busy"]
	if busy.Calls != 50 || busy.Errors != 1 {
		t.Errorf("busy delta = %d calls %d errors, want 50/1", busy.Calls, busy.Errors)
	}
	if math.Abs(busy.CallsPerSec-5.0) > 1e-9 {
		t.Errorf("busy rate = %v, want 5/s", busy.CallsPerSec)
	}
	if busy.Latency.Count != 50 {
		t.Errorf("busy window latency count = %d, want 50", busy.Latency.Count)
	}
	if len(busy.Latency.Buckets) == 0 {
		t.Error("buckets=1 yielded no raw buckets")
	}
	// A subcontract new since prev diffs against zero.
	if fresh := bySC["fresh"]; fresh.Calls != 20 {
		t.Errorf("fresh delta = %d, want full 20", fresh.Calls)
	}

	if len(resp.Peers) != 1 || resp.Peers[0].Calls != 30 {
		t.Fatalf("peer delta = %+v, want one peer with 30 calls", resp.Peers)
	}
	if len(resp.Hists) != 1 || resp.Hists[0].Latency.Count != 15 {
		t.Fatalf("hist delta = %+v, want dispatch.queue_delay count 15", resp.Hists)
	}
	// Percentiles of the window fall inside the only populated bucket.
	if p := busy.Latency.P99Ns; p < 1000 || p > 2000 {
		t.Errorf("window p99 = %d, want within [1000,2000]", p)
	}
}

func TestStatzEndpoint(t *testing.T) {
	s := startPlane(t)
	twoMachineCall(t)

	code, body := get(t, "http://"+s.Addr()+"/statz?window=0&buckets=1")
	if code != http.StatusOK {
		t.Fatalf("/statz: status %d, body %s", code, body)
	}
	var resp struct {
		Now           string  `json:"now"`
		WindowSeconds float64 `json:"window_seconds"`
		Subcontracts  []struct {
			Name    string  `json:"name"`
			Calls   uint64  `json:"calls"`
			Rate    float64 `json:"calls_per_sec"`
			Latency struct {
				Count   uint64     `json:"count"`
				P50Ns   int64      `json:"p50_ns"`
				P99Ns   int64      `json:"p99_ns"`
				Buckets [][3]int64 `json:"buckets"`
			} `json:"latency"`
		} `json:"subcontracts"`
		Peers []struct {
			Addr  string `json:"addr"`
			Calls uint64 `json:"calls"`
		} `json:"peers"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/statz not JSON: %v\n%s", err, body)
	}
	if resp.WindowSeconds <= 0 {
		t.Errorf("window_seconds = %v, want > 0 (totals since start)", resp.WindowSeconds)
	}
	found := map[string]bool{}
	for _, sc := range resp.Subcontracts {
		found[sc.Name] = true
		if sc.Name == "netd" {
			if sc.Calls == 0 || sc.Latency.Count == 0 {
				t.Errorf("netd: calls=%d latency.count=%d, want > 0 (always-on)", sc.Calls, sc.Latency.Count)
			}
			if sc.Latency.P50Ns <= 0 || sc.Latency.P99Ns < sc.Latency.P50Ns {
				t.Errorf("netd percentiles p50=%d p99=%d", sc.Latency.P50Ns, sc.Latency.P99Ns)
			}
			if len(sc.Latency.Buckets) == 0 {
				t.Error("netd: buckets=1 returned no buckets")
			}
		}
	}
	for _, want := range []string{"netd", "singleton"} {
		if !found[want] {
			t.Errorf("/statz missing subcontract %q (have %v)", want, found)
		}
	}
	if len(resp.Peers) == 0 {
		t.Error("/statz has no peers after a cross-machine call")
	}

	// A windowed request is also served (prev may clamp to ring start).
	code, body = get(t, "http://"+s.Addr()+"/statz?window=10s")
	if code != http.StatusOK || !strings.Contains(body, "window_seconds") {
		t.Errorf("/statz?window=10s: status %d\n%s", code, body)
	}
	// Bad windows are rejected.
	if code, _ := get(t, "http://"+s.Addr()+"/statz?window=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad window: status %d, want 400", code)
	}
}
