package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
	"repro/internal/trace"
)

// TestMetricsExemplars: a traced call leaves its trace ID on the latency
// bucket it landed in, and /metrics emits it as an exemplar suffix.
func TestMetricsExemplars(t *testing.T) {
	trace.Reset()
	t.Cleanup(trace.Reset)
	s := startPlane(t)
	traceID := twoMachineCall(t)

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(body, `# {trace_id="`) {
		t.Fatal("/metrics has no bucket exemplars after a traced call")
	}
	if !strings.Contains(body, fmt.Sprintf(`trace_id="%016x"`, traceID)) {
		t.Errorf("/metrics exemplars never mention the traced call %016x", traceID)
	}
	// The stale v1 HELP text is gone: recording is always-on now.
	if strings.Contains(body, "1 in 8") {
		t.Error("/metrics still advertises the old 1-in-8 sampled recording")
	}
}

// TestSlowTraceTailConformance is the PR's acceptance case: with head
// sampling fully off (-trace-sample 0), a call that exceeds the slow
// threshold is still retrievable at /traces/slow with its span tree,
// while fast calls leave nothing behind.
func TestSlowTraceTailConformance(t *testing.T) {
	trace.Reset()
	t.Cleanup(trace.Reset)
	trace.SetSampling(0)
	trace.SetSlowDefault(5 * time.Millisecond)
	t.Cleanup(func() { trace.SetSlowDefault(0) })
	s := startPlane(t)

	// Two in-process machines; the exported skeleton sleeps past the
	// threshold on get, returns instantly on add.
	kA := kernel.New("slowA")
	netA, err := netd.Start(kA.NewDomain("slowA-netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netA.Close() })
	kB := kernel.New("slowB")
	netB, err := netd.Start(kB.NewDomain("slowB-netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netB.Close() })

	envA, err := sctest.NewEnv(kA, "slowA-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	sleeper := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		if op == sctest.OpGet {
			time.Sleep(25 * time.Millisecond)
			results.WriteInt64(0)
			return nil
		}
		if _, err := args.ReadInt64(); err != nil {
			return err
		}
		results.WriteInt64(0)
		return nil
	})
	obj, _ := singleton.Export(envA, sctest.CounterMT, sleeper, nil)
	netA.PublishRoot("slow", obj)

	envB, err := sctest.NewEnv(kB, "slowB-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := netB.ImportRootObject(envB, netA.Addr(), "slow", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	// A fast call: armed speculatively, settled under threshold, dropped.
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	// The slow call tail capture must catch.
	if _, err := sctest.Get(remote); err != nil {
		t.Fatal(err)
	}

	// Head sampling was off: the main ring never recorded a root.
	if roots := trace.Roots(10); len(roots) != 0 {
		t.Fatalf("main ring has %d roots with sampling off: %+v", len(roots), roots)
	}

	// /traces/slow lists the slow root.
	code, body := get(t, "http://"+s.Addr()+"/traces/slow")
	if code != http.StatusOK {
		t.Fatalf("/traces/slow: status %d", code)
	}
	var listing []struct {
		Trace    string `json:"trace"`
		Name     string `json:"name"`
		Duration string `json:"duration"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("/traces/slow not JSON: %v\n%s", err, body)
	}
	var slowTrace string
	for _, root := range listing {
		d, err := time.ParseDuration(root.Duration)
		if err != nil {
			t.Fatalf("unparseable duration %q", root.Duration)
		}
		if d < 5*time.Millisecond {
			t.Errorf("/traces/slow lists a fast root: %+v", root)
		}
		if root.Name == "singleton.invoke" {
			slowTrace = root.Trace
		}
	}
	if slowTrace == "" {
		t.Fatalf("/traces/slow has no singleton.invoke root: %s", body)
	}

	// The full span tree resolves at /traces/{id} (via the slow ring),
	// with the client-side wire span nested under the invoke root.
	code, body = get(t, "http://"+s.Addr()+"/traces/"+slowTrace)
	if code != http.StatusOK {
		t.Fatalf("/traces/%s: status %d, body %s", slowTrace, code, body)
	}
	var tree []struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("slow trace not JSON: %v\n%s", err, body)
	}
	if len(tree) != 1 || tree[0].Name != "singleton.invoke" {
		t.Fatalf("slow tree = %+v, want one singleton.invoke root", tree)
	}
	var haveSend bool
	for _, c := range tree[0].Children {
		if c.Name == "netd.send" {
			haveSend = true
		}
	}
	if !haveSend {
		t.Errorf("slow tree lacks the netd.send child: %s", body)
	}

	// The speculative trace never crossed the wire: no server-side spans.
	for _, sd := range trace.SlowCollect(mustHex(t, slowTrace)) {
		if sd.Name == "netd.serve" || sd.Name == "skeleton" {
			t.Errorf("speculative trace leaked across the wire: %+v", sd)
		}
	}

	st := trace.TailStats()
	if st.Committed == 0 || st.Abandoned == 0 {
		t.Errorf("TailStats = %+v, want ≥1 committed (slow get) and ≥1 abandoned (fast add)", st)
	}
}

func mustHex(t *testing.T, s string) uint64 {
	t.Helper()
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		t.Fatal(err)
	}
	return v
}
