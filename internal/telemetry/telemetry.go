// Package telemetry is the opt-in runtime observability plane: an HTTP
// listener any daemon can start (-telemetry :6060) exposing what scstats
// and internal/trace already collect.
//
// Endpoints:
//
//	/metrics          every scstats counter, gauge and always-on latency
//	                  histogram (with trace exemplars) in Prometheus text
//	                  exposition format
//	/statz            windowed rates and percentiles (?window=10s; 0 for
//	                  totals since start, &buckets=1 for raw buckets)
//	/traces           recent trace roots (JSON)
//	/traces/slow      recent slow roots from the tail-capture ring (JSON)
//	/traces/{id}      one trace as a span tree (JSON; ?format=text for a
//	                  waterfall); slow-ring traces resolve here too
//	/healthz          liveness summary from the netd gauges: peer
//	                  sessions, breaker states, lease health
//	/debug/pprof/...  the standard Go profiler endpoints
//
// The plane is read-only and carries no authentication — it is operator
// tooling for machines you already own, like the SIGUSR1 scstats dump it
// extends. Everything it serves comes from lock-free snapshots, so
// scraping cannot perturb the data path.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/scstats"
	"repro/internal/trace"
)

// Server is one running telemetry listener.
type Server struct {
	ln    net.Listener
	http  *http.Server
	statz *statzState
}

// Start opens the telemetry plane on addr (e.g. ":6060", "127.0.0.1:0").
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	st := newStatzState()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/statz", st.handle)
	mux.HandleFunc("/traces", handleTraces)
	mux.HandleFunc("/traces/slow", handleSlowTraces)
	mux.HandleFunc("/traces/", handleTrace)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, http: &http.Server{Handler: mux}, statz: st}
	go func() { _ = s.http.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener and the statz sampler down.
func (s *Server) Close() error {
	s.statz.close()
	return s.http.Close()
}

// ---------------------------------------------------------------------
// /metrics

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w)
}

// ---------------------------------------------------------------------
// /traces and /traces/{id}

// traceJSON is the wire form of one span (trace/span IDs as hex strings —
// JSON numbers lose uint64 precision past 2^53).
type traceJSON struct {
	Trace    string `json:"trace"`
	Span     string `json:"span"`
	Parent   string `json:"parent,omitempty"`
	Name     string `json:"name"`
	Err      string `json:"err,omitempty"`
	Start    string `json:"start"` // RFC3339Nano
	Duration string `json:"duration"`

	Children []traceJSON `json:"children,omitempty"`
}

func spanJSON(sd trace.SpanData) traceJSON {
	tj := traceJSON{
		Trace:    fmt.Sprintf("%016x", sd.TraceID),
		Span:     fmt.Sprintf("%016x", sd.SpanID),
		Name:     sd.Name,
		Err:      sd.Err,
		Start:    time.Unix(0, sd.Start).UTC().Format(time.RFC3339Nano),
		Duration: time.Duration(sd.Duration).String(),
	}
	if sd.ParentID != 0 {
		tj.Parent = fmt.Sprintf("%016x", sd.ParentID)
	}
	return tj
}

func nodeJSON(n *trace.Node) traceJSON {
	tj := spanJSON(n.SpanData)
	for _, c := range n.Children {
		tj.Children = append(tj.Children, nodeJSON(c))
	}
	return tj
}

func handleTraces(w http.ResponseWriter, r *http.Request) {
	max := 50
	if q := r.URL.Query().Get("max"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			max = n
		}
	}
	out := []traceJSON{}
	for _, sd := range trace.Roots(max) {
		out = append(out, spanJSON(sd))
	}
	writeJSON(w, out)
}

// handleSlowTraces lists recent roots from the tail-capture slow ring:
// every call that exceeded its slow threshold, whether head sampling
// caught it or tail capture did.
func handleSlowTraces(w http.ResponseWriter, r *http.Request) {
	max := 50
	if q := r.URL.Query().Get("max"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			max = n
		}
	}
	out := []traceJSON{}
	for _, sd := range trace.SlowRoots(max) {
		out = append(out, spanJSON(sd))
	}
	writeJSON(w, out)
}

func handleTrace(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
	id, err := strconv.ParseUint(idStr, 16, 64)
	if err != nil || id == 0 {
		http.Error(w, "bad trace id (want 16 hex digits)", http.StatusBadRequest)
		return
	}
	roots := trace.Tree(id)
	if len(roots) == 0 {
		// Tail-captured traces live only in the slow ring.
		roots = trace.SlowTree(id)
	}
	if len(roots) == 0 {
		http.Error(w, "trace not found (unrecorded, or already overwritten)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		base := roots[0].Start
		for _, n := range roots {
			if n.Start < base {
				base = n.Start
			}
		}
		fmt.Fprintf(w, "trace %016x\n", id)
		for _, n := range roots {
			writeWaterfall(w, n, 0, base)
		}
		return
	}
	out := []traceJSON{}
	for _, n := range roots {
		out = append(out, nodeJSON(n))
	}
	writeJSON(w, out)
}

// writeWaterfall renders one span subtree as an indented text waterfall:
// offset from the trace's first recorded span, duration, span ID, error.
func writeWaterfall(w http.ResponseWriter, n *trace.Node, depth int, base int64) {
	status := ""
	if n.Err != "" {
		status = "  ERR " + n.Err
	}
	name := strings.Repeat("  ", depth) + n.Name
	fmt.Fprintf(w, "%-32s +%-12v %-12v span=%016x%s\n",
		name, time.Duration(n.Start-base), time.Duration(n.Duration), n.SpanID, status)
	for _, c := range n.Children {
		writeWaterfall(w, c, depth+1, base)
	}
}

// ---------------------------------------------------------------------
// /healthz

// health is the liveness summary, assembled from the netd gauges the
// liveness layer (PR 2) maintains.
type health struct {
	Status string `json:"status"` // "ok" or "degraded"
	// Degraded lists why status is "degraded" (empty when ok).
	Degraded []string `json:"degraded,omitempty"`

	ConnsLive       int64 `json:"conns_live"`
	SessionsLive    int64 `json:"sessions_live"`
	ExportsLive     int64 `json:"exports_live"`
	LeasesExpired   int64 `json:"leases_expired"`
	RefsReclaimed   int64 `json:"refs_reclaimed"`
	BreakersOpen    int64 `json:"breakers_open"`
	BreakerOpened   int64 `json:"breaker_opened_total"`
	BreakerClosed   int64 `json:"breaker_closed_total"`
	ReleasesQueued  int64 `json:"releases_queued"`
	TraceSampleRate int   `json:"trace_sample_every"`
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g := func(name string) int64 { return scstats.GaugeFor(name).Value() }
	h := health{
		Status:          "ok",
		ConnsLive:       g("netd.conns_live"),
		SessionsLive:    g("netd.sessions_live"),
		ExportsLive:     g("netd.exports_live"),
		LeasesExpired:   g("netd.leases_expired"),
		RefsReclaimed:   g("netd.refs_reclaimed"),
		BreakerOpened:   g("netd.breaker_opened"),
		BreakerClosed:   g("netd.breaker_closed"),
		ReleasesQueued:  g("netd.releases_queued"),
		TraceSampleRate: trace.SamplingEvery(),
	}
	h.BreakersOpen = h.BreakerOpened - h.BreakerClosed
	if h.BreakersOpen < 0 {
		h.BreakersOpen = 0
	}
	if h.BreakersOpen > 0 {
		h.Degraded = append(h.Degraded,
			fmt.Sprintf("%d circuit breaker(s) open: some peers unreachable", h.BreakersOpen))
	}
	if h.Degraded != nil {
		h.Status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
