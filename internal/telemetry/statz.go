package telemetry

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/scstats"
)

// /statz: windowed rates and percentiles.
//
// /metrics serves monotonic totals and leaves rate math to the scraper;
// /statz answers the operator's actual question — "what are the rates and
// percentiles over the last N seconds" — directly. A background sampler
// snapshots the whole scstats registry (subcontracts with per-op
// histograms, peers, named histograms) once a second into a ring; a
// request for ?window=10s diffs the current state against the stored
// sample nearest the window edge. Counts subtract exactly and histogram
// buckets subtract bucket-wise (counts are monotonic), so the percentiles
// reported for a window are computed from precisely the calls that
// completed inside it. ?window=0 returns totals since process start,
// which is what scbench uses: two scrapes bracket a benchmark phase and
// the cells' percentiles come from the client-side difference.
//
// Snapshots store sparse bucket lists, so a sample is a few KB and the
// default ring (128 samples ≈ 2 minutes) stays in the low MBs even with
// every subsystem instrumented.

const (
	statzInterval = time.Second
	statzRingCap  = 128
	statzMaxWin   = 10 * time.Minute
)

// statzSample is one timestamped registry snapshot.
type statzSample struct {
	at    time.Time
	scs   []scstats.Snapshot
	peers []scstats.PeerSnapshot
	hists []scstats.NamedHistSnapshot
}

func takeStatzSample(at time.Time) statzSample {
	return statzSample{
		at:    at,
		scs:   scstats.AllSnapshots(),
		peers: scstats.PeerSnapshots(),
		hists: scstats.HistSnapshots(),
	}
}

// statzRing is a fixed-capacity ring of samples, oldest overwritten
// first. Kept free of HTTP concerns so the wraparound math is unit
// testable.
type statzRing struct {
	mu      sync.Mutex
	samples []statzSample
	next    int // index the next push writes
	count   int // stored samples, ≤ cap
	start   time.Time
}

func newStatzRing(capacity int, start time.Time) *statzRing {
	return &statzRing{samples: make([]statzSample, capacity), start: start}
}

func (r *statzRing) push(s statzSample) {
	r.mu.Lock()
	r.samples[r.next] = s
	r.next = (r.next + 1) % len(r.samples)
	if r.count < len(r.samples) {
		r.count++
	}
	r.mu.Unlock()
}

// before returns the newest stored sample taken at or before cutoff. When
// every stored sample is newer than cutoff (the window reaches past what
// the ring still holds), it returns the oldest stored sample — the caller
// reports the actual, clamped window. ok is false only when the ring is
// empty.
func (r *statzRing) before(cutoff time.Time) (statzSample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return statzSample{}, false
	}
	var best statzSample
	found := false
	oldest := statzSample{}
	oldestSet := false
	for i := 0; i < r.count; i++ {
		// Walk stored slots; order within the ring does not matter for
		// max-under-cutoff or min-overall.
		s := r.samples[(r.next-1-i+2*len(r.samples))%len(r.samples)]
		if !oldestSet || s.at.Before(oldest.at) {
			oldest = s
			oldestSet = true
		}
		if !s.at.After(cutoff) && (!found || s.at.After(best.at)) {
			best = s
			found = true
		}
	}
	if found {
		return best, true
	}
	return oldest, true
}

// ---------------------------------------------------------------------
// JSON shapes.

type statzLat struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	// Buckets is the sparse interval histogram as [lo_ns, hi_ns, count]
	// triples (hi −1 = unbounded), included only with ?buckets=1 —
	// clients that diff two absolute scrapes themselves (scbench) need
	// the raw buckets, dashboards do not.
	Buckets [][3]int64 `json:"buckets,omitempty"`
}

func latFrom(h scstats.HistSnapshot, withBuckets bool) statzLat {
	l := statzLat{
		Count:  h.Count,
		MeanNs: h.Mean(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		P999Ns: h.Quantile(0.999),
	}
	if withBuckets {
		for _, b := range h.Buckets {
			hi := b.Hi
			if hi == int64(^uint64(0)>>1) { // math.MaxInt64
				hi = -1
			}
			l.Buckets = append(l.Buckets, [3]int64{b.Lo, hi, int64(b.Count)})
		}
	}
	return l
}

type statzOp struct {
	Op       uint32   `json:"op"`
	Overflow bool     `json:"overflow,omitempty"`
	Latency  statzLat `json:"latency"`
}

type statzSC struct {
	Name         string    `json:"name"`
	Calls        uint64    `json:"calls"`
	CallsPerSec  float64   `json:"calls_per_sec"`
	Errors       uint64    `json:"errors"`
	ErrorsPerSec float64   `json:"errors_per_sec"`
	Retries      uint64    `json:"retries,omitempty"`
	Hits         uint64    `json:"hits,omitempty"`
	Misses       uint64    `json:"misses,omitempty"`
	Coalesced    uint64    `json:"coalesced,omitempty"`
	Latency      statzLat  `json:"latency"`
	Ops          []statzOp `json:"ops,omitempty"`
}

type statzPeer struct {
	Addr         string   `json:"addr"`
	Calls        uint64   `json:"calls"`
	CallsPerSec  float64  `json:"calls_per_sec"`
	Errors       uint64   `json:"errors"`
	ErrorsPerSec float64  `json:"errors_per_sec"`
	Latency      statzLat `json:"latency"`
}

type statzHist struct {
	Name    string   `json:"name"`
	Latency statzLat `json:"latency"`
}

type statzResponse struct {
	Now           string      `json:"now"`
	WindowSeconds float64     `json:"window_seconds"`
	Subcontracts  []statzSC   `json:"subcontracts"`
	Peers         []statzPeer `json:"peers,omitempty"`
	Hists         []statzHist `json:"hists,omitempty"`
}

// ---------------------------------------------------------------------
// Delta assembly.

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// statzDelta builds the response for cur − prev over secs seconds.
func statzDelta(cur, prev statzSample, secs float64, withBuckets bool) statzResponse {
	resp := statzResponse{
		Now:           cur.at.UTC().Format(time.RFC3339Nano),
		WindowSeconds: secs,
	}
	rate := func(n uint64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(n) / secs
	}

	prevSC := make(map[string]scstats.Snapshot, len(prev.scs))
	for _, s := range prev.scs {
		prevSC[s.Name] = s
	}
	for _, c := range cur.scs {
		p := prevSC[c.Name] // zero Snapshot when new since prev
		lat := c.Lat.Sub(p.Lat)
		sc := statzSC{
			Name:      c.Name,
			Calls:     sub64(c.Calls, p.Calls),
			Errors:    sub64(c.Errors, p.Errors),
			Retries:   sub64(c.Retries, p.Retries),
			Hits:      sub64(c.Hits, p.Hits),
			Misses:    sub64(c.Misses, p.Misses),
			Coalesced: sub64(c.Coalesced, p.Coalesced),
			Latency:   latFrom(lat, withBuckets),
		}
		sc.CallsPerSec = rate(sc.Calls)
		sc.ErrorsPerSec = rate(sc.Errors)
		if sc.Calls == 0 && sc.Latency.Count == 0 {
			continue // idle over the window
		}
		prevOps := make(map[uint32]scstats.OpSnapshot, len(p.Ops))
		for _, op := range p.Ops {
			prevOps[op.Op] = op
		}
		for _, op := range c.Ops {
			d := op.Lat.Sub(prevOps[op.Op].Lat)
			if d.Count == 0 {
				continue
			}
			sc.Ops = append(sc.Ops, statzOp{Op: op.Op, Overflow: op.Overflow, Latency: latFrom(d, withBuckets)})
		}
		resp.Subcontracts = append(resp.Subcontracts, sc)
	}

	prevPeer := make(map[string]scstats.PeerSnapshot, len(prev.peers))
	for _, s := range prev.peers {
		prevPeer[s.Addr] = s
	}
	for _, c := range cur.peers {
		p := prevPeer[c.Addr]
		sp := statzPeer{
			Addr:    c.Addr,
			Calls:   sub64(c.Calls, p.Calls),
			Errors:  sub64(c.Errors, p.Errors),
			Latency: latFrom(c.Lat.Sub(p.Lat), withBuckets),
		}
		if sp.Calls == 0 && sp.Latency.Count == 0 {
			continue
		}
		sp.CallsPerSec = rate(sp.Calls)
		sp.ErrorsPerSec = rate(sp.Errors)
		resp.Peers = append(resp.Peers, sp)
	}

	prevHist := make(map[string]scstats.NamedHistSnapshot, len(prev.hists))
	for _, s := range prev.hists {
		prevHist[s.Name] = s
	}
	for _, c := range cur.hists {
		d := c.Hist.Sub(prevHist[c.Name].Hist)
		if d.Count == 0 {
			continue
		}
		resp.Hists = append(resp.Hists, statzHist{Name: c.Name, Latency: latFrom(d, withBuckets)})
	}
	return resp
}

// ---------------------------------------------------------------------
// The sampler and handler, owned by a Server.

type statzState struct {
	ring *statzRing
	stop chan struct{}
	done chan struct{}
}

func newStatzState() *statzState {
	st := &statzState{
		ring: newStatzRing(statzRingCap, time.Now()),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go st.sample()
	return st
}

func (st *statzState) sample() {
	defer close(st.done)
	t := time.NewTicker(statzInterval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case now := <-t.C:
			st.ring.push(takeStatzSample(now))
		}
	}
}

func (st *statzState) close() {
	close(st.stop)
	<-st.done
}

func (st *statzState) handle(w http.ResponseWriter, r *http.Request) {
	window := 10 * time.Second
	if q := r.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil && q == "0" {
			d, err = 0, nil
		}
		if err != nil || d < 0 {
			http.Error(w, "bad window (want a duration like 10s, or 0 for totals since start)", http.StatusBadRequest)
			return
		}
		if d > statzMaxWin {
			d = statzMaxWin
		}
		window = d
	}
	withBuckets := r.URL.Query().Get("buckets") == "1"

	now := time.Now()
	cur := takeStatzSample(now)
	var prev statzSample
	if window == 0 {
		// Totals since process start: diff against the empty registry.
		prev = statzSample{at: st.ring.start}
	} else if s, ok := st.ring.before(now.Add(-window)); ok {
		prev = s
	} else {
		prev = statzSample{at: st.ring.start}
	}
	secs := now.Sub(prev.at).Seconds()
	if window == 0 {
		secs = now.Sub(st.ring.start).Seconds()
	}
	writeJSON(w, statzDelta(cur, prev, secs, withBuckets))
}
