package stubs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
)

// loopSC is a subcontract whose invoke runs the skeleton in-process,
// exercising the full stub path without a kernel door.
type loopSC struct {
	skel      Skeleton
	preambles int
	releases  int
}

func (l *loopSC) ID() core.ID  { return 999 }
func (l *loopSC) Name() string { return "loop" }
func (l *loopSC) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	return nil, errors.New("loop: not marshallable")
}
func (l *loopSC) Marshal(obj *core.Object, buf *buffer.Buffer) error     { return errors.New("no") }
func (l *loopSC) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error { return errors.New("no") }
func (l *loopSC) InvokePreamble(obj *core.Object, call *core.Call) error {
	l.preambles++
	call.Release = func() { l.releases++ }
	return nil
}
func (l *loopSC) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	reply := buffer.New(64)
	if err := ServeCall(l.skel, call.Args(), reply); err != nil {
		return nil, err
	}
	return reply, nil
}
func (l *loopSC) Copy(obj *core.Object) (*core.Object, error) { return obj, nil }
func (l *loopSC) Consume(obj *core.Object) error              { return obj.MarkConsumed() }

// adder implements a two-op interface: 0 = add(a,b)->sum, 1 = fail(msg).
func adderSkeleton() Skeleton {
	return SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case 0:
			a, err := args.ReadInt32()
			if err != nil {
				return err
			}
			b, err := args.ReadInt32()
			if err != nil {
				return err
			}
			results.WriteInt32(a + b)
			return nil
		case 1:
			msg, err := args.ReadString()
			if err != nil {
				return err
			}
			return errors.New(msg)
		default:
			return ErrBadOp
		}
	})
}

func newLoopObject(t *testing.T) (*core.Object, *loopSC) {
	t.Helper()
	k := kernel.New("m")
	env := core.NewEnv(k.NewDomain("d"))
	sc := &loopSC{skel: adderSkeleton()}
	mt := &core.MTable{Type: "stubstest.adder", DefaultSC: sc.ID(), Ops: []string{"add", "fail"}}
	return core.NewObject(env, mt, sc, nil), sc
}

func TestCallRoundTrip(t *testing.T) {
	obj, sc := newLoopObject(t)
	var sum int32
	err := Call(obj, 0,
		func(b *buffer.Buffer) error {
			b.WriteInt32(19)
			b.WriteInt32(23)
			return nil
		},
		func(b *buffer.Buffer) error {
			var err error
			sum, err = b.ReadInt32()
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d, want 42", sum)
	}
	if sc.preambles != 1 {
		t.Fatalf("preambles = %d, want 1", sc.preambles)
	}
	if sc.releases != 1 {
		t.Fatalf("releases = %d, want 1 (stub layer must run call.Release)", sc.releases)
	}
}

func TestRemoteException(t *testing.T) {
	obj, _ := newLoopObject(t)
	err := Call(obj, 1,
		func(b *buffer.Buffer) error {
			b.WriteString("disk on fire")
			return nil
		}, nil)
	if err == nil {
		t.Fatal("expected remote error")
	}
	if !IsRemote(err) {
		t.Fatalf("IsRemote(%v) = false", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("error lost message: %v", err)
	}
}

func TestUnknownOpIsRemoteException(t *testing.T) {
	obj, _ := newLoopObject(t)
	err := Call(obj, 99, nil, nil)
	if !IsRemote(err) {
		t.Fatalf("unknown op error = %v, want remote exception", err)
	}
	if !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("error = %v", err)
	}
}

func TestCallNilObject(t *testing.T) {
	if err := Call(nil, 0, nil, nil); !errors.Is(err, core.ErrNilObject) {
		t.Fatalf("Call(nil) = %v, want ErrNilObject", err)
	}
}

func TestNoArgsNoResults(t *testing.T) {
	k := kernel.New("m")
	env := core.NewEnv(k.NewDomain("d"))
	called := false
	sc := &loopSC{skel: SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		called = true
		return nil
	})}
	mt := &core.MTable{Type: "stubstest.void", DefaultSC: sc.ID(), Ops: []string{"ping"}}
	obj := core.NewObject(env, mt, sc, nil)
	if err := Call(obj, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("skeleton not invoked")
	}
}

func TestServeCallTruncatedHeader(t *testing.T) {
	reply := buffer.New(8)
	if err := ServeCall(adderSkeleton(), buffer.New(0), reply); err == nil {
		t.Fatal("truncated call accepted")
	}
}

func TestServeCallSplicesResultDoors(t *testing.T) {
	k := kernel.New("m")
	srv := k.NewDomain("srv")
	skel := SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		h, _ := srv.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
			return buffer.New(0), nil
		}, nil)
		return srv.MoveToBuffer(h, results)
	})
	req := buffer.New(8)
	req.WriteUint32(0)
	reply := buffer.New(8)
	if err := ServeCall(skel, req, reply); err != nil {
		t.Fatal(err)
	}
	if status, _ := reply.ReadByte(); status != statusOK {
		t.Fatalf("status = %d", status)
	}
	cli := k.NewDomain("cli")
	if _, err := cli.AdoptFromBuffer(reply); err != nil {
		t.Fatalf("door did not survive splice: %v", err)
	}
}

func TestCallOneway(t *testing.T) {
	obj, _ := newLoopObject(t)
	// A successful oneway call.
	err := Call(obj, 0,
		func(b *buffer.Buffer) error { b.WriteInt32(1); b.WriteInt32(2); return nil },
		func(b *buffer.Buffer) error { _, err := b.ReadInt32(); return err })
	if err != nil {
		t.Fatal(err)
	}
	if err := CallOneway(obj, 0, func(b *buffer.Buffer) error {
		b.WriteInt32(1)
		b.WriteInt32(2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Remote exceptions are swallowed: fire and forget.
	if err := CallOneway(obj, 1, func(b *buffer.Buffer) error {
		b.WriteString("quietly ignored")
		return nil
	}); err != nil {
		t.Fatalf("oneway surfaced a server failure: %v", err)
	}
	if err := CallOneway(nil, 0, nil); !errors.Is(err, core.ErrNilObject) {
		t.Fatalf("CallOneway(nil) = %v", err)
	}
}

func TestDecodeReplyEdgeCases(t *testing.T) {
	// Truncated reply.
	if err := DecodeReply(buffer.New(0), nil); err == nil {
		t.Fatal("empty reply accepted")
	}
	// Unknown status byte.
	bad := buffer.New(4)
	bad.WriteByte(7)
	if err := DecodeReply(bad, nil); err == nil {
		t.Fatal("bad status accepted")
	}
	// Truncated exception payload.
	trunc := buffer.New(4)
	trunc.WriteByte(1) // statusError with no code/message
	if err := DecodeReply(trunc, nil); err == nil {
		t.Fatal("truncated exception accepted")
	}
	// Leftover doors in a reply are released, not leaked: give the reply
	// an unconsumed door and check the unref fires.
	k := kernel.New("m")
	d := k.NewDomain("d")
	unref := make(chan struct{})
	h, _ := d.CreateDoor(func(*buffer.Buffer) (*buffer.Buffer, error) { return buffer.New(0), nil },
		func() { close(unref) })
	reply := buffer.New(8)
	reply.WriteByte(0) // statusOK
	if err := d.MoveToBuffer(h, reply); err != nil {
		t.Fatal(err)
	}
	if err := DecodeReply(reply, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("reply door leaked")
	}
}

func TestMarshalArgsFailureSurfaces(t *testing.T) {
	obj, _ := newLoopObject(t)
	boom := errors.New("marshal exploded")
	err := Call(obj, 0, func(*buffer.Buffer) error { return boom }, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Call = %v, want wrapped marshal error", err)
	}
}

func TestRemoteErrorUnwrap(t *testing.T) {
	err := &RemoteError{Msg: "x"}
	if !IsRemote(err) {
		t.Fatal("IsRemote on direct RemoteError = false")
	}
	if IsRemote(errors.New("plain")) {
		t.Fatal("IsRemote on plain error = true")
	}
}
