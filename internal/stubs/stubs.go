// Package stubs provides the support layer that IDL-generated stubs and
// skeletons are written against.
//
// The paper keeps a complete separation between stubs and subcontracts:
// any set of stubs can work with any subcontract and vice versa (§9.1).
// Client stubs marshal arguments into a buffer, call the object's
// subcontract to execute the remote call, and unmarshal results from the
// reply buffer; server skeletons unmarshal arguments, call into the server
// application, and marshal results (§2.1, §4). This package implements
// that machinery once, generically, so generated code contains only the
// per-operation marshalling.
//
// Wire conventions (after any subcontract-level control sections, which
// the subcontract itself writes and strips):
//
//	call:  [opnum u32] [marshalled arguments...]
//	reply: [status u8] [error string]            (status 1: remote exception)
//	       [status u8] [marshalled results...]   (status 0)
package stubs

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/trace"
)

// spanSkeleton brackets server-side skeleton dispatch on a traced call —
// the innermost hop of a trace, covering argument unmarshalling, the
// server application, and result marshalling.
var spanSkeleton = trace.Name("skeleton")

// Reply status codes.
const (
	statusOK    = 0
	statusError = 1
)

// RemoteError is an error raised by the server application (or skeleton)
// and propagated to the client through the reply buffer. Code allows
// services to classify failures across the wire (0 means uncoded); see
// CodeOf.
type RemoteError struct {
	Code uint32
	Msg  string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// CodeOf extracts the remote error code from err, or 0 if err is not a
// coded remote error.
func CodeOf(err error) uint32 {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	return 0
}

// IsRemote reports whether err is (or wraps) a server-raised error, as
// opposed to a communication failure. Subcontracts use this distinction:
// replicon and reconnectable retry communication failures but never remote
// exceptions.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// MarshalFunc marshals one operation's arguments or results.
type MarshalFunc func(*buffer.Buffer) error

// Call executes one operation on obj through its subcontract: it runs the
// subcontract invoke_preamble (before any argument marshalling, §5.1.4),
// writes the operation number, marshals arguments, invokes, checks the
// reply status, and unmarshals results.
//
// marshalArgs and unmarshalResults may be nil for operations without
// arguments or results.
//
// opts attach an invocation context (core.WithDeadline, core.WithCancel,
// core.WithTrace). A call whose context has already ended fails fast —
// before the preamble runs or any argument is marshalled — with
// core.ErrDeadlineExceeded or core.ErrCancelled. The stub itself applies
// no other policy: how the context bounds retries, failover or network
// waits is entirely the subcontract's business, preserving the
// stub/subcontract separation.
func Call(obj *core.Object, op core.OpNum, marshalArgs, unmarshalResults MarshalFunc, opts ...core.CallOption) error {
	if obj == nil {
		return core.ErrNilObject
	}
	call := core.NewCall(op, opts...)
	if err := call.Err(); err != nil {
		scstats.For(obj.SC.Name()).FailFast(err)
		return err
	}
	if err := obj.SC.InvokePreamble(obj, call); err != nil {
		return fmt.Errorf("stubs: invoke_preamble %s op %d: %w", obj.MT.Type, op, err)
	}
	if call.Release != nil {
		defer call.Release()
	}
	args := call.Args()
	args.WriteUint32(uint32(op))
	if marshalArgs != nil {
		if err := marshalArgs(args); err != nil {
			kernel.ReleaseBufferDoors(args)
			return fmt.Errorf("stubs: marshalling %s op %d: %w", obj.MT.Type, op, err)
		}
	}
	reply, err := obj.SC.Invoke(obj, call)
	if err != nil {
		return err
	}
	err = DecodeReply(reply, unmarshalResults)
	// The round trip completed, so every stage is done with the argument
	// bytes: a local skeleton has returned (retained arguments must be
	// copied — see Skeleton), and a network grant has been read before the
	// reply was sent. Recycle the buffer unless a preamble owns it (its
	// Release hook recycles into the subcontract's own pool). An errored
	// invoke skips this: a timed-out or cancelled call may still be in
	// flight, and the buffer must stay intact behind it.
	if call.Release == nil {
		kernel.ReleaseBufferDoors(args)
		buffer.Put(args)
	}
	return err
}

// DecodeReply consumes a reply buffer's status and either unmarshals the
// results or reconstructs the remote exception. It releases any door
// references left unconsumed. Specialized stubs (§9.1; see
// doorsc.FastCall) share it with the general-purpose path.
func DecodeReply(reply *buffer.Buffer, unmarshalResults MarshalFunc) error {
	defer kernel.ReleaseBufferDoors(reply)
	status, err := reply.ReadByte()
	if err != nil {
		return fmt.Errorf("stubs: truncated reply: %w", err)
	}
	switch status {
	case statusOK:
		if unmarshalResults != nil {
			if err := unmarshalResults(reply); err != nil {
				return fmt.Errorf("stubs: unmarshalling results: %w", err)
			}
		}
		return nil
	case statusError:
		code, err := reply.ReadUint32()
		if err != nil {
			return fmt.Errorf("stubs: truncated remote exception: %w", err)
		}
		msg, err := reply.ReadString()
		if err != nil {
			return fmt.Errorf("stubs: truncated remote exception: %w", err)
		}
		return &RemoteError{Code: code, Msg: msg}
	default:
		return fmt.Errorf("stubs: bad reply status %d", status)
	}
}

// CallOneway executes a oneway operation: the caller does not wait for
// results and never observes server-application failures. Transport-level
// failures (dead door, unreachable machine) are still reported, since the
// subcontract surfaces them synchronously. Any reply content — including
// a remote exception — is discarded, matching oneway's fire-and-forget
// contract.
func CallOneway(obj *core.Object, op core.OpNum, marshalArgs MarshalFunc, opts ...core.CallOption) error {
	if obj == nil {
		return core.ErrNilObject
	}
	call := core.NewCall(op, opts...)
	if err := call.Err(); err != nil {
		scstats.For(obj.SC.Name()).FailFast(err)
		return err
	}
	if err := obj.SC.InvokePreamble(obj, call); err != nil {
		return fmt.Errorf("stubs: invoke_preamble %s op %d: %w", obj.MT.Type, op, err)
	}
	if call.Release != nil {
		defer call.Release()
	}
	args := call.Args()
	args.WriteUint32(uint32(op))
	if marshalArgs != nil {
		if err := marshalArgs(args); err != nil {
			kernel.ReleaseBufferDoors(args)
			return fmt.Errorf("stubs: marshalling %s op %d: %w", obj.MT.Type, op, err)
		}
	}
	reply, err := obj.SC.Invoke(obj, call)
	if err != nil {
		return err
	}
	kernel.ReleaseBufferDoors(reply)
	if call.Release == nil {
		kernel.ReleaseBufferDoors(args)
		buffer.Put(args)
	}
	return nil
}

// Skeleton is the server-side dispatch table generated for an interface:
// it unmarshals the operation's arguments from args, calls into the server
// application, and marshals results into results. Returning an error turns
// the call into a remote exception; in that case the skeleton must not
// have written to results.
//
// The argument buffer's storage is recycled once the call completes —
// it may be pool-backed, region-backed, or a mapped bulk grant — so a
// skeleton (or the server application behind it) that retains a byte
// slice read from args beyond the dispatch must copy it first. Generated
// skeletons already do (byte parameters are copied before they reach the
// application); the same rule has always applied to calls under the shm
// subcontract's recycled regions.
type Skeleton interface {
	Dispatch(op core.OpNum, args, results *buffer.Buffer) error
}

// SkeletonFunc adapts a function to the Skeleton interface.
type SkeletonFunc func(op core.OpNum, args, results *buffer.Buffer) error

// Dispatch implements Skeleton.
func (f SkeletonFunc) Dispatch(op core.OpNum, args, results *buffer.Buffer) error {
	return f(op, args, results)
}

// ErrBadOp is the error a skeleton returns for an unknown operation number
// (a version-skew symptom). It surfaces at the client as a remote
// exception.
var ErrBadOp = errors.New("stubs: unknown operation")

// WriteException encodes an uncoded remote exception directly into reply.
// It is for server-side subcontract code that must reject a call before
// stub-level dispatch (for example the cluster subcontract rejecting an
// unknown tag).
func WriteException(reply *buffer.Buffer, msg string) {
	reply.WriteByte(statusError)
	reply.WriteUint32(0)
	reply.WriteString(msg)
}

// ServeCall runs the server half of an invocation: it reads the operation
// number from req, dispatches through skel, and appends the status and
// results (or the remote exception) to reply. The subcontract's server
// code calls this after stripping any call control section and writing any
// reply control section, so subcontract dialogue brackets the stub-level
// payload on both sides.
//
// An error return means a transport-level failure (malformed request); the
// door call itself should then fail rather than produce a reply.
func ServeCall(skel Skeleton, req, reply *buffer.Buffer) error {
	return ServeCallInfo(skel, req, reply, nil)
}

// InfoSkeleton is optionally implemented by skeletons (or servers) that
// want to see the caller's invocation context — typically to inherit the
// remaining deadline budget into their own outbound calls. Skeletons that
// don't implement it are dispatched as before; the context stays a
// subcontract/kernel concern.
type InfoSkeleton interface {
	DispatchInfo(op core.OpNum, args, results *buffer.Buffer, info *kernel.Info) error
}

// ServeCallInfo is ServeCall with the caller's invocation context. If the
// context has already ended the call is rejected as a remote exception
// before dispatch (the work would be wasted — the client has given up).
// Skeletons implementing InfoSkeleton receive the context; others are
// dispatched through the plain Skeleton interface.
func ServeCallInfo(skel Skeleton, req, reply *buffer.Buffer, info *kernel.Info) error {
	op, err := req.ReadUint32()
	if err != nil {
		return fmt.Errorf("stubs: truncated call header: %w", err)
	}
	if err := info.Err(); err != nil {
		kernel.ReleaseBufferDoors(req)
		WriteException(reply, err.Error())
		return nil
	}
	// The skeleton marshals results directly into the reply, behind a
	// speculative status byte — no intermediate results buffer, no splice
	// copy. On a remote exception the section is rolled back: conforming
	// skeletons wrote nothing, but a mid-marshal failure is truncated (and
	// its door references released) all the same.
	mark := reply.Mark()
	reply.WriteByte(statusOK)
	sp := trace.Begin(info, spanSkeleton)
	var derr error
	if is, ok := skel.(InfoSkeleton); ok {
		derr = is.DispatchInfo(core.OpNum(op), req, reply, info)
	} else {
		derr = skel.Dispatch(core.OpNum(op), req, reply)
	}
	sp.End(info, derr)
	if err := derr; err != nil {
		if dropped := reply.Truncate(mark); len(dropped) != 0 {
			kernel.ReleaseBufferDoors(buffer.FromParts(nil, dropped))
		}
		reply.WriteByte(statusError)
		var re *RemoteError
		if errors.As(err, &re) {
			reply.WriteUint32(re.Code)
			reply.WriteString(re.Msg)
		} else {
			reply.WriteUint32(0)
			reply.WriteString(err.Error())
		}
		return nil
	}
	return nil
}
