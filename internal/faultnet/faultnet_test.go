package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair dials through fn to a plain echo-less listener and returns
// both ends: the fault-controlled client conn and the raw server conn.
func pipePair(t *testing.T, fn *Net) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err = fn.Dialer(nil)(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept never completed")
	}
	t.Cleanup(func() { server.Close() })
	return client, server
}

func TestRefuseDials(t *testing.T) {
	fn := New()
	fn.RefuseDials(true)
	if _, err := fn.Dialer(nil)("127.0.0.1:1"); !errors.Is(err, ErrRefused) {
		t.Fatalf("refused dial = %v, want ErrRefused", err)
	}
	fn.RefuseDials(false)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			c.Close()
		}
	}()
	c, err := fn.Dialer(nil)(ln.Addr().String())
	if err != nil {
		t.Fatalf("healed dial = %v", err)
	}
	c.Close()
}

func TestSeverInboundStallsAndHeals(t *testing.T) {
	fn := New()
	client, server := pipePair(t, fn)

	// Normal delivery first.
	if _, err := server.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "one" {
		t.Fatalf("pre-sever read = %q, %v", buf[:n], err)
	}

	fn.SeverInbound()
	if _, err := server.Write([]byte("two")); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		n, err := client.Read(buf)
		if err == nil {
			got <- string(buf[:n])
		}
	}()
	select {
	case s := <-got:
		t.Fatalf("read %q through a severed link", s)
	case <-time.After(100 * time.Millisecond):
	}
	fn.Heal()
	select {
	case s := <-got:
		if s != "two" {
			t.Fatalf("post-heal read = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heal did not wake the stalled reader")
	}
}

func TestSeverOutboundDiscards(t *testing.T) {
	fn := New()
	client, server := pipePair(t, fn)
	fn.SeverOutbound()
	if n, err := client.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("blackholed write = %d, %v", n, err)
	}
	_ = server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := server.Read(buf); err == nil {
		t.Fatalf("peer received %q through severed outbound", buf[:n])
	}
	fn.Heal()
	if _, err := client.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "back" {
		t.Fatalf("post-heal read = %q, %v", buf[:n], err)
	}
}

func TestTruncateNextWrite(t *testing.T) {
	fn := New()
	client, server := pipePair(t, fn)
	fn.TruncateNextWrite()
	if _, err := client.Write([]byte("12345678")); err == nil {
		t.Fatal("truncated write reported success")
	}
	data, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4 {
		t.Fatalf("peer saw %d bytes of 8, want 4 (truncated mid-frame)", len(data))
	}
	if fn.Live() != 0 {
		t.Fatalf("truncation left %d live conns", fn.Live())
	}
}

func TestKillAfterWrites(t *testing.T) {
	fn := New()
	client, server := pipePair(t, fn)
	fn.KillAfterWrites(2)
	if _, err := client.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	// The second write landed and then the conn died.
	data, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ab" {
		t.Fatalf("peer saw %q", data)
	}
	if _, err := client.Write([]byte("c")); err == nil {
		t.Fatal("write on killed conn succeeded")
	}
}

func TestCloseAllWakesStalledReaders(t *testing.T) {
	fn := New()
	client, _ := pipePair(t, fn)
	fn.SeverInbound()
	done := make(chan error, 1)
	go func() {
		_, err := client.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	fn.CloseAll()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read on killed conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CloseAll left a reader stranded")
	}
	if fn.Live() != 0 {
		t.Fatalf("live conns after CloseAll = %d", fn.Live())
	}
}

func TestSetDelay(t *testing.T) {
	fn := New()
	client, server := pipePair(t, fn)
	fn.SetDelay(50 * time.Millisecond)
	if _, err := server.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 8)
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("delayed read returned in %v", d)
	}
}
