// Package faultnet is a deterministic fault-injection harness for the
// network door servers: it wraps net.Listener, net.Conn and dialer
// functions so tests can script the failures a real network produces —
// refused dials, hung dials, symmetric and asymmetric partitions,
// added latency, frames truncated mid-write, and ungraceful connection
// kills — without touching a packet filter.
//
// A Net is a control plane for every connection created through its
// wrapped listener or dialer. Faults are flipped at runtime and apply to
// live connections as well as future ones. It composes over the netd
// Transport interface through netd.FuncTransport: the wrapped funcs
// carry the fault control, Inner supplies the underlying transport (and,
// via Unwrap, its capability set and bulk-region tier), so every fault
// scenario runs unchanged over TCP or the same-machine tier:
//
//	fn := faultnet.New()
//	tr := netd.FuncTransport{
//		ListenFunc: fn.ListenFunc(nil), // nil inner funcs mean TCP
//		DialFunc:   fn.Dialer(nil),
//	}
//	srv, _ := netd.Start(dom, "127.0.0.1:0", netd.WithTransport(tr))
//	...
//	fn.Partition()      // peer falls silent: reads stall, writes vanish
//	fn.Heal()           // stalled readers wake; traffic resumes
//	fn.CloseAll()       // ungraceful crash of every live connection
//	fn.RefuseDials(true)
//
// Partition semantics mirror TCP's: a severed inbound direction stalls
// reads (data is preserved in the peer's socket buffer, so healing within
// a protocol's grace period resumes cleanly), while a severed outbound
// direction silently discards writes, exactly like packets dropped on the
// floor — the stream is no longer trustworthy afterwards and the protocol
// above is expected to detect the loss and redial. Sever takes effect at
// the next Read/Write call boundary, which for length-prefixed protocols
// is a frame boundary.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrRefused is returned by a wrapped dialer while RefuseDials is on.
var ErrRefused = errors.New("faultnet: dial refused by fault injection")

// ErrSevered is returned from reads that were stalled by a severed
// direction when the connection is closed out from under them.
var ErrSevered = errors.New("faultnet: connection severed")

// Net is one fault domain: a set of wrapped connections and the faults
// currently applied to them.
type Net struct {
	mu         sync.Mutex
	healed     chan struct{} // closed and replaced on Heal, waking stalled readers
	refuse     bool
	dialDelay  time.Duration
	severIn    bool // stall reads on wrapped conns
	severOut   bool // discard writes on wrapped conns
	delay      time.Duration
	truncate   bool // truncate the next write mid-way, then kill the conn
	killAfterW int  // countdown of writes until a hard kill; <0 disarmed
	conns      map[*Conn]struct{}
}

// New creates an empty fault domain with no faults active.
func New() *Net {
	return &Net{healed: make(chan struct{}), killAfterW: -1, conns: make(map[*Conn]struct{})}
}

// RefuseDials makes the wrapped dialer fail immediately (on) or behave
// normally (off).
func (n *Net) RefuseDials(on bool) {
	n.mu.Lock()
	n.refuse = on
	n.mu.Unlock()
}

// SetDialDelay makes every wrapped dial sleep d before attempting the
// real dial (simulating a routing black hole bounded by the caller's
// dial timeout).
func (n *Net) SetDialDelay(d time.Duration) {
	n.mu.Lock()
	n.dialDelay = d
	n.mu.Unlock()
}

// SetDelay adds d of latency in front of every read.
func (n *Net) SetDelay(d time.Duration) {
	n.mu.Lock()
	n.delay = d
	n.mu.Unlock()
}

// SeverInbound stalls all reads on wrapped connections: the endpoint
// stops hearing its peers, but in-transit data survives in socket
// buffers and is delivered after Heal.
func (n *Net) SeverInbound() {
	n.mu.Lock()
	n.severIn = true
	n.mu.Unlock()
}

// SeverOutbound silently discards all writes on wrapped connections: the
// endpoint's peers stop hearing it. Discarded bytes are gone; a framed
// protocol must treat the stream as corrupt once healed.
func (n *Net) SeverOutbound() {
	n.mu.Lock()
	n.severOut = true
	n.mu.Unlock()
}

// Partition severs both directions: the endpoint is fully isolated but
// its connections stay "up" as TCP would during a link failure.
func (n *Net) Partition() {
	n.mu.Lock()
	n.severIn, n.severOut = true, true
	n.mu.Unlock()
}

// Heal clears every sever and wakes stalled readers.
func (n *Net) Heal() {
	n.mu.Lock()
	n.severIn, n.severOut = false, false
	close(n.healed)
	n.healed = make(chan struct{})
	n.mu.Unlock()
}

// TruncateNextWrite arms a one-shot fault: the next write on any wrapped
// connection sends only its first half and then hard-closes the
// connection, leaving the peer with a frame cut off mid-body.
func (n *Net) TruncateNextWrite() {
	n.mu.Lock()
	n.truncate = true
	n.mu.Unlock()
}

// KillAfterWrites arms a countdown: after k more Write calls across the
// wrapped connections complete, the connection performing the k-th write
// is hard-closed. Pass a negative k to disarm.
func (n *Net) KillAfterWrites(k int) {
	n.mu.Lock()
	n.killAfterW = k
	n.mu.Unlock()
}

// KillOne hard-closes one live wrapped connection (any one) and reports
// whether there was one to kill — a single-stripe loss, as opposed to
// CloseAll's full crash.
func (n *Net) KillOne() bool {
	n.mu.Lock()
	var victim *Conn
	for c := range n.conns {
		victim = c
		break
	}
	n.mu.Unlock()
	if victim == nil {
		return false
	}
	_ = victim.Close()
	return true
}

// CloseAll hard-closes every live wrapped connection — an ungraceful
// crash: no releases, no FIN ordering guarantees above the socket.
func (n *Net) CloseAll() {
	n.mu.Lock()
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Live reports the number of wrapped connections not yet closed.
func (n *Net) Live() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// wrap registers a new wrapped conn.
func (n *Net) wrap(inner net.Conn) *Conn {
	c := &Conn{Conn: inner, net: n}
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	return c
}

func (n *Net) drop(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Listener wraps ln so every accepted connection is under this Net's
// control.
func (n *Net) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n}
}

// Listen is shorthand for net.Listen followed by Listener.
func (n *Net) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return n.Listener(ln), nil
}

// ListenFunc wraps listen (nil means net.Listen("tcp", ·)) so every
// connection accepted through it is under this Net's control — the
// listener-side counterpart of Dialer, for composing a transport's own
// Listen into a netd.FuncTransport.
func (n *Net) ListenFunc(listen func(addr string) (net.Listener, error)) func(addr string) (net.Listener, error) {
	if listen == nil {
		listen = func(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
	}
	return func(addr string) (net.Listener, error) {
		ln, err := listen(addr)
		if err != nil {
			return nil, err
		}
		return n.Listener(ln), nil
	}
}

// Dialer wraps dial (nil means net.Dial("tcp", ·)) so every dialled
// connection is under this Net's control and dials honor RefuseDials and
// SetDialDelay.
func (n *Net) Dialer(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		n.mu.Lock()
		refuse, d := n.refuse, n.dialDelay
		n.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		if refuse {
			return nil, ErrRefused
		}
		inner, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return n.wrap(inner), nil
	}
}

type listener struct {
	net.Listener
	net *Net
}

func (l *listener) Accept() (net.Conn, error) {
	inner, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(inner), nil
}

// Conn is one fault-controlled connection.
type Conn struct {
	net.Conn
	net    *Net
	closed sync.Once
}

// Read applies the inbound faults: stall while severed (waking on Heal
// or Close), then delay, then the real read.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		c.net.mu.Lock()
		stalled := c.net.severIn
		healed := c.net.healed
		delay := c.net.delay
		c.net.mu.Unlock()
		if !stalled {
			if delay > 0 {
				time.Sleep(delay)
			}
			return c.Conn.Read(p)
		}
		// Severed: hold the read until healed or the conn dies. Use a
		// deadline poke so a Close from under us cannot strand the
		// goroutine (SetReadDeadline also wakes blocked readers, but we
		// never enter the inner read while stalled).
		select {
		case <-healed:
		case <-time.After(10 * time.Millisecond):
			// Re-check severed state and liveness.
			c.net.mu.Lock()
			_, live := c.net.conns[c]
			c.net.mu.Unlock()
			if !live {
				return 0, ErrSevered
			}
		}
	}
}

// Write applies the outbound faults: truncation, kill countdowns, and
// severed-direction discard.
func (c *Conn) Write(p []byte) (int, error) {
	c.net.mu.Lock()
	if c.net.truncate {
		c.net.truncate = false
		c.net.mu.Unlock()
		n, _ := c.Conn.Write(p[:len(p)/2])
		_ = c.Close()
		return n, ErrSevered
	}
	kill := false
	if c.net.killAfterW > 0 {
		c.net.killAfterW--
		kill = c.net.killAfterW == 0
		if kill {
			c.net.killAfterW = -1
		}
	}
	severed := c.net.severOut
	c.net.mu.Unlock()
	if severed {
		// Packets on the floor: the caller believes the write succeeded.
		return len(p), nil
	}
	n, err := c.Conn.Write(p)
	if kill {
		_ = c.Close()
	}
	return n, err
}

// Close hard-closes the connection and removes it from the fault domain.
func (c *Conn) Close() error {
	var err error
	c.closed.Do(func() {
		c.net.drop(c)
		err = c.Conn.Close()
	})
	return err
}
