package integration

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/reconnectable"
)

// Fault tests: subcontracts layered over the network door servers must
// recover from the failures internal/faultnet injects — the whole point
// of classifying every transport failure as retryable.

// fastCfg is a liveness configuration scaled for tests: heartbeats in
// tens of milliseconds, a grace period that outlasts the injected
// partitions, and call/dial timeouts short enough that retry loops spin
// quickly.
func fastCfg() netd.Config {
	return netd.Config{
		CallTimeout:       200 * time.Millisecond,
		DialTimeout:       100 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		LeaseGrace:        2 * time.Second,
		BreakerBackoff:    10 * time.Millisecond,
		BreakerMaxBackoff: 50 * time.Millisecond,
	}
}

// newFaultMachine is newMachine with explicit netd configuration; if fn
// is non-nil the machine's outbound dials run under its fault control.
func newFaultMachine(t *testing.T, name string, fn *faultnet.Net, cfg netd.Config) *machine {
	t.Helper()
	if fn != nil {
		cfg.Transport = netd.FuncTransport{DialFunc: fn.Dialer(nil)}
	}
	k := kernel.New(name)
	netSrv, err := netd.Start(k.NewDomain(name+"-netd"), "127.0.0.1:0", netd.With(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netSrv.Close() })

	m := &machine{t: t, k: k, net: netSrv}
	nsEnv := m.env(name + "-naming")
	m.ns = naming.NewServer(nsEnv)
	netSrv.PublishRoot("naming", m.ns.Object())
	return m
}

// TestReconnectableBridgesTransientPartition partitions the client off
// mid-session for less than the lease grace period: every failed call is
// classified retryable, so the reconnectable subcontract's retry loop
// quietly bridges the outage and the read completes after the heal — no
// re-resolve visible to the application, no state lost.
func TestReconnectableBridgesTransientPartition(t *testing.T) {
	fn := faultnet.New()
	a := newFaultMachine(t, "A", nil, fastCfg())
	b := newFaultMachine(t, "B", fn, fastCfg())

	srvEnv := a.env("fileserver")
	srvCtxCp, err := a.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	srvCtx, err := sctest.Transfer(srvCtxCp, srvEnv, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	rs := filesys.NewReconnectableService(srvEnv, naming.Context{Obj: srvCtx})
	a.net.PublishRoot("fs", rs.Object())

	cliB := b.env("clientB")
	ctxObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	cliB.Set(reconnectable.ContextVar, ctxObjB)
	cliB.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 100, Backoff: 10 * time.Millisecond})

	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}
	f, err := fsB.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("survives")); err != nil {
		t.Fatal(err)
	}

	// Partition for 300ms — well inside the 2s grace, so no lease is
	// reclaimed and no proxy poisoned; the session survives.
	fn.Partition()
	go func() {
		time.Sleep(300 * time.Millisecond)
		fn.Heal()
	}()

	start := time.Now()
	data, err := f.Read(0, 8)
	if err != nil || string(data) != "survives" {
		t.Fatalf("read across transient partition = %q, %v", data, err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("read finished in %v — partition never bit", elapsed)
	}
}

// TestReconnectableRebootstrapsAfterLeaseLoss partitions the client off
// for LONGER than the grace period: the exporter reclaims the session's
// references and the client's proxies are poisoned, so recovery requires
// a fresh bootstrap import — after which everything works again. This is
// the documented containment contract: a long partition looks exactly
// like a server crash.
func TestReconnectableRebootstrapsAfterLeaseLoss(t *testing.T) {
	fn := faultnet.New()
	cfg := fastCfg()
	cfg.LeaseGrace = 150 * time.Millisecond
	a := newFaultMachine(t, "A", nil, cfg)
	b := newFaultMachine(t, "B", fn, cfg)

	srvEnv := a.env("fileserver")
	fsSrv := filesys.NewService(srvEnv)
	a.net.PublishRoot("fs", fsSrv.Object())

	cliB := b.env("clientB")
	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}
	if _, err := fsB.Create("doomed"); err != nil {
		t.Fatal(err)
	}

	fn.Partition()
	// The old fs proxy must end up failing fast and retryably.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := fsB.Create("x")
		if err != nil {
			if !core.Retryable(err) {
				t.Fatalf("partition-time error not retryable: %v", err)
			}
			start := time.Now()
			_, err2 := fsB.Create("x")
			if err2 != nil && time.Since(start) < 50*time.Millisecond {
				break // failing fast now
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("calls never started failing fast")
		}
		time.Sleep(10 * time.Millisecond)
	}

	fn.Heal()
	// A fresh bootstrap import recovers; the server reclaimed the old
	// session's state in the meantime.
	var fresh filesys.FileSystem
	ok := false
	for attempt := 0; attempt < 100 && !ok; attempt++ {
		obj, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
		if err == nil {
			fresh = filesys.FileSystem{Obj: obj}
			ok = true
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("re-bootstrap never succeeded after heal")
	}
	f, err := fresh.Create("after")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if data, err := f.Read(0, 2); err != nil || string(data) != "ok" {
		t.Fatalf("read after re-bootstrap = %q, %v", data, err)
	}
}

// TestClientDeathReclaimsFileServerState kills a client machine that
// holds open files on a file server: within one grace period the
// server's netd export table returns to its pre-connection state — the
// per-file references the dead client held are reclaimed, firing the
// same unreferenced path a graceful release would have.
func TestClientDeathReclaimsFileServerState(t *testing.T) {
	cfg := fastCfg()
	cfg.LeaseGrace = 150 * time.Millisecond
	a := newFaultMachine(t, "A", nil, cfg)
	b := newFaultMachine(t, "B", nil, cfg)

	fsSrv := filesys.NewService(a.env("fileserver"))
	a.net.PublishRoot("fs", fsSrv.Object())
	before := a.net.Exports()

	cliB := b.env("clientB")
	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}
	for _, name := range []string{"one", "two", "three"} {
		f, err := fsB.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(0, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	if a.net.Exports() <= before {
		t.Fatalf("exports did not grow with open files: %d", a.net.Exports())
	}

	// Ungraceful client death: no releases are ever sent.
	b.net.Close()

	deadline := time.Now().Add(3 * time.Second)
	for a.net.Exports() != before {
		if time.Now().After(deadline) {
			t.Fatalf("exports never returned to baseline: %d, want %d",
				a.net.Exports(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := a.net.Sessions(); got != 0 {
		t.Fatalf("dead client's session survived: %d", got)
	}
}

// TestCachingServesReadsThroughPartition: a caching-subcontract file
// whose reads are cached on the client machine keeps serving those reads
// while the wire to the file server is partitioned — cache hits never
// cross the network — while uncached operations fail retryably.
func TestCachingServesReadsThroughPartition(t *testing.T) {
	fn := faultnet.New()
	a := newMachine(t, "A")

	// Machine B with fault-controlled dials and the full cache plumbing.
	k := kernel.New("B")
	cfg := fastCfg()
	cfg.Transport = netd.FuncTransport{DialFunc: fn.Dialer(nil)}
	netSrv, err := netd.Start(k.NewDomain("B-netd"), "127.0.0.1:0", netd.With(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netSrv.Close() })
	b := &machine{t: t, k: k, net: netSrv}
	nsEnv := b.env("B-naming")
	b.ns = naming.NewServer(nsEnv)
	b.mgr = cache.NewManager(b.env("B-cachemgr"))
	cp, err := b.mgr.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.ns.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Bind("cachemgr", cp, false); err != nil {
		t.Fatal(err)
	}
	selfCtx, err := b.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	nsEnv.Set(caching.LocalContextVar, selfCtx)
	netSrv.PublishRoot("naming", b.ns.Object())

	fsSrv := filesys.NewCachingService(a.env("fileserver"), "cachemgr")
	a.net.PublishRoot("fs", fsSrv.Object())

	cliB := b.env("clientB")
	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}
	f, err := fsB.Create("warm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("cached bytes")); err != nil {
		t.Fatal(err)
	}
	// Warm the client-side cache.
	if data, err := f.Read(0, 6); err != nil || string(data) != "cached" {
		t.Fatalf("warming read = %q, %v", data, err)
	}

	fn.Partition()
	defer fn.Heal()

	// Cached reads still work: they are served by B's cache manager.
	for i := 0; i < 3; i++ {
		data, err := f.Read(0, 6)
		if err != nil || string(data) != "cached" {
			t.Fatalf("partitioned read %d = %q, %v", i, data, err)
		}
	}
	// An uncached operation (write) must cross the wire and fail
	// retryably, not hang or panic.
	if _, err := f.Write(0, []byte("X")); err == nil {
		t.Fatal("write crossed a full partition")
	} else if !core.Retryable(err) {
		t.Fatalf("partitioned write error not retryable: %v", err)
	}
}
