// Package integration exercises the full paper narrative across
// subsystems: the §7 object life cycle, the §6.2 dynamic-discovery
// protocol with its network name service and trusted search path, and
// multi-machine configurations over the network door servers.
package integration

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/cluster"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/simplex"
	"repro/internal/subcontracts/singleton"
	"repro/internal/subcontracts/value"
)

// machine is one simulated host: kernel, network door server, naming
// server, cache manager, and a factory for application domains.
type machine struct {
	t   *testing.T
	k   *kernel.Kernel
	net *netd.Server
	ns  *naming.Server
	mgr *cache.Manager
}

func newMachine(t *testing.T, name string) *machine {
	t.Helper()
	k := kernel.New(name)
	netSrv, err := netd.Start(k.NewDomain(name+"-netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netSrv.Close() })

	m := &machine{t: t, k: k, net: netSrv}
	nsEnv := m.env(name + "-naming")
	m.ns = naming.NewServer(nsEnv)
	m.mgr = cache.NewManager(m.env(name + "-cachemgr"))
	cp, err := m.mgr.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.ns.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Bind("cachemgr", cp, false); err != nil {
		t.Fatal(err)
	}
	// The naming server's own domain stores bound objects, so it too
	// needs the machine-local context to unmarshal caching objects.
	selfCtx, err := m.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	nsEnv.Set(caching.LocalContextVar, selfCtx)
	netSrv.PublishRoot("naming", m.ns.Object())
	return m
}

// env creates a domain with the full standard library set and the
// machine-local contexts wired.
func (m *machine) env(name string) *core.Env {
	m.t.Helper()
	e, err := sctest.NewEnv(m.k, name, filesys.RegisterAll, cluster.Register)
	if err != nil {
		m.t.Fatal(err)
	}
	if m.ns != nil {
		cp, err := m.ns.Object().Copy()
		if err != nil {
			m.t.Fatal(err)
		}
		ctx, err := sctest.Transfer(cp, e, naming.ContextMT)
		if err != nil {
			m.t.Fatal(err)
		}
		e.Set(caching.LocalContextVar, ctx)
	}
	return e
}

// TestLifecycleSimplex walks the §7 narrative: a fileserver creates a
// Spring object with the simplex subcontract, passes it to another
// address space as the result of a file_system operation, the client
// invokes methods, copies the object, sends the copy onward, and finally
// consumes everything — at which point the kernel notifies the server so
// it can clean up.
func TestLifecycleSimplex(t *testing.T) {
	m := newMachine(t, "m1")
	srvEnv := m.env("fileserver")
	cliEnv := m.env("client")
	otherEnv := m.env("other-app")

	unref := make(chan struct{})
	ctr := &sctest.Counter{}
	obj := simplex.Export(srvEnv, sctest.CounterMT, ctr.Skeleton(), func() { close(unref) })

	// Birth: no cross-domain resources yet.
	if simplex.HasDoor(obj) {
		t.Fatal("door created before first marshal")
	}

	// Transfer between address spaces (as a file_system reply would).
	remote, err := sctest.Transfer(obj, cliEnv, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	// Invocation: preamble (a no-op for simplex) + door call.
	if v, err := sctest.Add(remote, 10); err != nil || v != 10 {
		t.Fatalf("Add = %d, %v", v, err)
	}

	// Reproduction: a shallow copy designating the same state.
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	// The copy travels onward to a third address space.
	moved, err := sctest.Transfer(cp, otherEnv, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(moved); err != nil || v != 10 {
		t.Fatalf("moved copy Get = %d, %v", v, err)
	}

	// Death: consuming every identifier triggers the unreferenced
	// notification so the server can clean up.
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
		t.Fatal("unreferenced fired early")
	case <-time.After(5 * time.Millisecond):
	}
	if err := moved.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("server never notified of object death")
	}
}

// TestDynamicDiscovery reproduces the §6.2 scenario end to end: a domain
// expecting a file-like object with the singleton subcontract instead
// receives a replicon object. The singleton unmarshal discovers the
// foreign identifier, the registry misses, the loader maps the identifier
// to replicon.so through the network name service (an SCMap object), the
// library is found on the trusted search path and linked in, and
// unmarshalling continues with the new code — all without the receiving
// program having been linked with any knowledge of replication.
func TestDynamicDiscovery(t *testing.T) {
	m := newMachine(t, "m1")

	// The network name service mapping subcontract ids to library names.
	scmap := naming.NewSCMapServer(m.env("scmap-server"))
	scmap.Publish(replicon.SC.ID(), replicon.LibraryName)

	// The shared library filesystem, with replicon.so installed in a
	// standard directory by the administrator.
	store := core.NewLibraryStore()
	store.Install("/usr/lib/subcontracts", replicon.LibraryName, replicon.Register)

	// A legacy client domain: linked ONLY with singleton, loader wired to
	// the name service and trusting only the standard directory.
	legacy, err := sctest.NewEnv(m.k, "legacy-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := scmap.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	scmapObj, err := sctest.Transfer(cp, legacy, naming.SCMapMT)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Registry.SetLoader(&core.Loader{
		Names:      naming.SCMapClient{Obj: scmapObj},
		Store:      store,
		SearchPath: []string{"/usr/lib/subcontracts"},
	})

	// A replicated counter, marshalled toward the legacy domain.
	g := replicon.NewGroup()
	ctr := &sctest.Counter{}
	for i := 0; i < 2; i++ {
		renv, err := sctest.NewEnv(m.k, "replica", replicon.Register)
		if err != nil {
			t.Fatal(err)
		}
		g.Join(renv, "r", ctr.Skeleton())
	}
	exporter, err := sctest.NewEnv(m.k, "exporter", replicon.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj := g.Export(exporter, sctest.CounterMT)

	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	// The stubs expect the counter type, whose default subcontract is
	// singleton — exactly the paper's file/replicated_file story.
	got, err := core.Unmarshal(legacy, sctest.CounterMT, buf)
	if err != nil {
		t.Fatalf("discovery failed: %v", err)
	}
	if got.SC.ID() != replicon.SC.ID() {
		t.Fatalf("unmarshalled via %s, want replicon", got.SC.Name())
	}
	if v, err := sctest.Add(got, 3); err != nil || v != 3 {
		t.Fatalf("invoke through discovered subcontract = %d, %v", v, err)
	}
	_, misses, loads := legacy.Registry.Stats()
	if misses != 1 || loads != 1 {
		t.Fatalf("registry stats: misses=%d loads=%d, want 1/1", misses, loads)
	}
}

// TestDiscoveryRefusesUntrustedLibrary checks the security half of §6.2: a
// library present only outside the trusted search path is not loaded.
func TestDiscoveryRefusesUntrustedLibrary(t *testing.T) {
	m := newMachine(t, "m1")
	store := core.NewLibraryStore()
	store.Install("/home/mallory", replicon.LibraryName, replicon.Register)

	legacy, err := sctest.NewEnv(m.k, "legacy-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Registry.SetLoader(&core.Loader{
		Names:      core.NameServiceFunc(func(core.ID) (string, error) { return replicon.LibraryName, nil }),
		Store:      store,
		SearchPath: []string{"/usr/lib/subcontracts"},
	})

	g := replicon.NewGroup()
	renv, err := sctest.NewEnv(m.k, "replica", replicon.Register)
	if err != nil {
		t.Fatal(err)
	}
	g.Join(renv, "r", (&sctest.Counter{}).Skeleton())
	exporter, err := sctest.NewEnv(m.k, "exporter", replicon.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj := g.Export(exporter, sctest.CounterMT)

	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Unmarshal(legacy, sctest.CounterMT, buf); !errors.Is(err, core.ErrUntrustedLibrary) {
		t.Fatalf("Unmarshal = %v, want ErrUntrustedLibrary", err)
	}
}

// TestCachingFileSystemAcrossMachines is Figure 5 over a real wire:
// machine A serves cacheable files; a client on machine B transparently
// invokes through B's cache manager, and repeated reads never cross the
// network.
func TestCachingFileSystemAcrossMachines(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	fsSrv := filesys.NewCachingService(a.env("fileserver"), "cachemgr")
	a.net.PublishRoot("fs", fsSrv.Object())

	cliB := b.env("clientB")
	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}

	f, err := fsB.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("cross-machine bytes")); err != nil {
		t.Fatal(err)
	}
	if f.Obj.SC.Name() != "caching" {
		t.Fatalf("file subcontract on B = %s", f.Obj.SC.Name())
	}

	// Warm the cache, then read repeatedly.
	for i := 0; i < 4; i++ {
		data, err := f.Read(0, 5)
		if err != nil || string(data) != "cross" {
			t.Fatalf("read %d = %q, %v", i, data, err)
		}
	}
	// The cache manager on B served the repeats.
	sb := b.mgr.Stats()
	if sb.Misses != 1 || sb.Hits != 3 {
		t.Fatalf("B cache stats = %+v, want 1 miss + 3 hits", sb)
	}
	// A's manager was never involved (the file was exported on A and
	// invoked from B).
	sa := a.mgr.Stats()
	if sa.Hits+sa.Misses != 0 {
		t.Fatalf("A cache stats = %+v, want untouched", sa)
	}

	// Writes invalidate on B and reach A.
	if _, err := f.Write(0, []byte("CROSS")); err != nil {
		t.Fatal(err)
	}
	data, err := f.Read(0, 5)
	if err != nil || string(data) != "CROSS" {
		t.Fatalf("read after write = %q, %v", data, err)
	}
}

// TestReplicatedFileAcrossMachines serves a replicated file from machine A
// to a client on machine B; a replica crash on A is invisible on B.
func TestReplicatedFileAcrossMachines(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	front := a.env("fs-front")
	replicas := []*core.Env{a.env("r0"), a.env("r1"), a.env("r2")}
	rs := filesys.NewReplicatedService(front, replicas)
	a.net.PublishRoot("fs", rs.Object())

	cliB := b.env("clientB")
	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}

	f, err := fsB.Create("repl")
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := filesys.NarrowReplicatedFile(f.Obj)
	if !ok {
		t.Fatalf("narrow failed: %v via %s", f.Obj.MT.Type, f.Obj.SC.Name())
	}
	if _, err := rf.Write(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := rs.CrashReplica("repl", 0); err != nil {
		t.Fatal(err)
	}
	data, err := rf.Read(0, 5)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read after replica crash = %q, %v", data, err)
	}
	if n, err := rf.Replicas(); err != nil || n != 2 {
		t.Fatalf("Replicas = %d, %v", n, err)
	}
}

// TestReconnectableAcrossMachines runs the §8.3 story over the wire: the
// file server on machine A crashes and restarts; the client on machine B
// re-resolves through A's naming service (which survived) and quietly
// recovers.
func TestReconnectableAcrossMachines(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	srvEnv := a.env("fileserver")
	srvCtxCp, err := a.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	srvCtx, err := sctest.Transfer(srvCtxCp, srvEnv, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	rs := filesys.NewReconnectableService(srvEnv, naming.Context{Obj: srvCtx})
	a.net.PublishRoot("fs", rs.Object())

	cliB := b.env("clientB")
	ctxObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	cliB.Set(reconnectable.ContextVar, ctxObjB)
	cliB.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 50, Backoff: time.Millisecond})

	fsObjB, err := b.net.ImportRootObject(cliB, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fsB := filesys.FileSystem{Obj: fsObjB}
	f, err := fsB.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	if f.Obj.SC.Name() != "reconnectable" {
		t.Fatalf("subcontract on B = %s", f.Obj.SC.Name())
	}
	if _, err := f.Write(0, []byte("survives")); err != nil {
		t.Fatal(err)
	}

	rs.Crash()
	if err := rs.Restart(); err != nil {
		t.Fatal(err)
	}
	data, err := f.Read(0, 8)
	if err != nil || string(data) != "survives" {
		t.Fatalf("read after cross-machine crash+restart = %q, %v", data, err)
	}
}

// TestValueObjectOutlivesServer sends a pass-by-value object from machine
// A to machine B: the state travels with it, so invocations on B never
// touch the network — the object keeps working after machine A vanishes
// entirely (§2.1/§3.2: objects that are not server-based).
func TestValueObjectOutlivesServer(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	aEnv, err := sctest.NewEnv(a.k, "producer", filesys.RegisterAll, value.Register)
	if err != nil {
		t.Fatal(err)
	}
	bEnv, err := sctest.NewEnv(b.k, "consumer", filesys.RegisterAll, value.Register)
	if err != nil {
		t.Fatal(err)
	}

	obj := value.New(aEnv, noteMT, []byte("portable state"))
	a.net.PublishRoot("note", obj)
	got, err := b.net.ImportRootObject(bEnv, a.net.Addr(), "note", noteMT)
	if err != nil {
		t.Fatal(err)
	}
	if got.SC.Name() != "value" {
		t.Fatalf("subcontract = %s", got.SC.Name())
	}

	// Machine A disappears completely.
	a.net.Close()

	// The object still works: its state lives on B.
	var text string
	err = stubs.Call(got, 0, nil, func(buf *buffer.Buffer) error {
		var err error
		text, err = buf.ReadString()
		return err
	})
	if err != nil || text != "portable state" {
		t.Fatalf("invoke after server death = %q, %v", text, err)
	}
}

// noteMT is a one-op value type: 0 read() -> string.
const noteType core.TypeID = "integration.note"

var noteMT = &core.MTable{Type: noteType, DefaultSC: 11, Ops: []string{"read"}}

func init() {
	core.MustRegisterType(noteType, core.ObjectType)
	core.MustRegisterMTable(noteMT)
	value.RegisterHandler(noteType, value.HandlerFunc(
		func(state []byte, op core.OpNum, args, results *buffer.Buffer) ([]byte, error) {
			if op != 0 {
				return nil, stubs.ErrBadOp
			}
			results.WriteString(string(state))
			return state, nil
		}))
}

// TestClusterAcrossMachines serves many cluster objects from machine A to
// a client on machine B: one door (and therefore one netd export entry)
// backs all of them, and tag dispatch still reaches the right object
// through the proxy.
func TestClusterAcrossMachines(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	srvEnv := a.env("cluster-server")
	s := cluster.NewServer(srvEnv)
	const n = 20
	ctrs := make([]*sctest.Counter, n)
	ns := naming.NewServer(a.env("cluster-naming"))
	h, err := ns.Handle()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ctrs[i] = &sctest.Counter{}
		obj, err := s.Export(sctest.CounterMT, ctrs[i].Skeleton())
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Bind(fmt.Sprintf("c%02d", i), obj, false); err != nil {
			t.Fatal(err)
		}
	}
	a.net.PublishRoot("cluster-naming", ns.Object())

	cli := b.env("clientB")
	ctxObj, err := b.net.ImportRootObject(cli, a.net.Addr(), "cluster-naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	ctx := naming.Context{Obj: ctxObj}
	for i := 0; i < n; i++ {
		obj, err := ctx.Resolve(fmt.Sprintf("c%02d", i), sctest.CounterMT)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sctest.Add(obj, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range ctrs {
		if c.Value() != int64(i+1) {
			t.Fatalf("counter %d = %d (cross-machine tag cross-talk)", i, c.Value())
		}
	}
}

// TestMixedSubcontractsOneNamingContext binds objects with five different
// subcontracts into one naming context and resolves/invokes them all —
// "these different object mechanisms are all on a par with one another"
// (§10).
func TestMixedSubcontractsOneNamingContext(t *testing.T) {
	m := newMachine(t, "m1")
	h, err := m.ns.Handle()
	if err != nil {
		t.Fatal(err)
	}

	ctrs := make(map[string]*sctest.Counter)

	// singleton
	{
		env := m.env("s1")
		ctr := &sctest.Counter{}
		ctrs["singleton"] = ctr
		obj, _ := singleton.Export(env, sctest.CounterMT, ctr.Skeleton(), nil)
		if err := h.Bind("singleton", obj, false); err != nil {
			t.Fatal(err)
		}
	}
	// simplex
	{
		env := m.env("s2")
		ctr := &sctest.Counter{}
		ctrs["simplex"] = ctr
		obj := simplex.Export(env, sctest.CounterMT, ctr.Skeleton(), nil)
		if err := h.Bind("simplex", obj, false); err != nil {
			t.Fatal(err)
		}
	}
	// replicon
	{
		g := replicon.NewGroup()
		ctr := &sctest.Counter{}
		ctrs["replicon"] = ctr
		for i := 0; i < 2; i++ {
			g.Join(m.env("rep"), "r", ctr.Skeleton())
		}
		obj := g.Export(m.env("rep-exporter"), sctest.CounterMT)
		if err := h.Bind("replicon", obj, false); err != nil {
			t.Fatal(err)
		}
	}
	// caching
	{
		env := m.env("s3")
		ctr := &sctest.Counter{}
		ctrs["caching"] = ctr
		obj, _ := caching.Export(env, sctest.CounterMT, ctr.Skeleton(), "cachemgr",
			cache.NewOpSet(sctest.OpGet), cache.NewOpSet(sctest.OpAdd), nil)
		if err := h.Bind("caching", obj, false); err != nil {
			t.Fatal(err)
		}
	}

	cli := m.env("client")
	ctxCp, err := m.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	ctxObj, err := sctest.Transfer(ctxCp, cli, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	ctx := naming.Context{Obj: ctxObj}

	for _, name := range []string{"singleton", "simplex", "replicon", "caching"} {
		obj, err := ctx.Resolve(name, sctest.CounterMT)
		if err != nil {
			t.Fatalf("resolve %s: %v", name, err)
		}
		if v, err := sctest.Add(obj, 1); err != nil || v != 1 {
			t.Fatalf("%s: Add = %d, %v", name, v, err)
		}
		if ctrs[name].Value() != 1 {
			t.Fatalf("%s: server state = %d", name, ctrs[name].Value())
		}
	}
}
