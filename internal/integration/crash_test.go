package integration

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/subcontracts/replicon"
)

// Crash tests (E19): a durable file server — WAL-backed stores plus a
// netd state file — is SIGKILLed mid-write-load and restarted against
// the same directories. The restarted process rejoins under its old
// instance identity, rebinds its labeled exports, and replays its logs,
// so clients riding the reconnectable and replicon subcontracts see
// zero application-visible errors and no acked write is lost.

// durableServer is one restartable server process: kernel, WAL-backed
// reconnectable and replicated file services, and a durable netd.
type durableServer struct {
	k     *kernel.Kernel
	net   *netd.Server
	ns    *naming.Server
	wal   *filesys.WAL
	rwal  *filesys.WAL
	recon *filesys.ReconnectableService
	repl  *filesys.ReplicatedService
}

// startDurableServer boots (or re-boots) the server process against the
// given durable directories. listenAddr is "127.0.0.1:0" on first boot
// and the concrete first-boot address on restart.
func startDurableServer(t *testing.T, listenAddr, walDir, rwalDir, stateFile string) *durableServer {
	t.Helper()
	k := kernel.New("S")
	srv := &durableServer{k: k}

	nsEnv, err := sctest.NewEnv(k, "S-naming", filesys.RegisterAll)
	if err != nil {
		t.Fatal(err)
	}
	srv.ns = naming.NewServer(nsEnv)

	// Reconnectable flavor over a WAL-recovered store.
	store := filesys.NewStore()
	srv.wal, err = filesys.OpenWAL(walDir, store, filesys.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srvEnv, err := sctest.NewEnv(k, "S-files", filesys.RegisterAll)
	if err != nil {
		t.Fatal(err)
	}
	ctxCp, err := srv.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	srvCtx, err := sctest.Transfer(ctxCp, srvEnv, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	srv.recon = filesys.NewReconnectableServiceWithStore(srvEnv, naming.Context{Obj: srvCtx}, store)
	// First boot recovers an empty store, so the unconditional rebind is
	// a no-op there and the real recovery path on restart.
	if err := srv.recon.Restart(); err != nil {
		t.Fatal(err)
	}

	// Replicated flavor over its own WAL-recovered store.
	rstore := filesys.NewStore()
	srv.rwal, err = filesys.OpenWAL(rwalDir, rstore, filesys.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	front, err := sctest.NewEnv(k, "S-front", filesys.RegisterAll)
	if err != nil {
		t.Fatal(err)
	}
	var replicas []*core.Env
	for i := 0; i < 3; i++ {
		renv, err := sctest.NewEnv(k, fmt.Sprintf("S-r%d", i), filesys.RegisterAll)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, renv)
	}
	srv.repl = filesys.NewReplicatedServiceWithStore(front, replicas, rstore)

	roots := map[string]*core.Object{
		"naming": srv.ns.Object(),
		"fs":     srv.recon.Object(),
		"rfs":    srv.repl.Object(),
	}
	rebindRoot := netd.RootRebinder(roots)
	rebinder := func(label string) (kernel.Ref, bool) {
		if ref, ok := rebindRoot(label); ok {
			return ref, true
		}
		rest, ok := strings.CutPrefix(label, "replica:")
		if !ok {
			return kernel.Ref{}, false
		}
		hash := strings.LastIndex(rest, "#")
		if hash < 0 {
			return kernel.Ref{}, false
		}
		var i int
		if _, err := fmt.Sscanf(rest[hash+1:], "%d", &i); err != nil {
			return kernel.Ref{}, false
		}
		return srv.repl.MemberRef(rest[:hash], i)
	}

	srv.net, err = netd.Start(k.NewDomain("S-netd"), listenAddr,
		netd.With(fastCfg()), netd.WithStateFile(stateFile), netd.WithRebinder(rebinder))
	if err != nil {
		t.Fatal(err)
	}
	srv.repl.SetMemberHook(func(file string, i int, ref kernel.Ref) {
		srv.net.LabelDoor(ref, fmt.Sprintf("replica:%s#%d", file, i))
	})
	for name, obj := range roots {
		srv.net.PublishRoot(name, obj)
	}
	return srv
}

// kill is the SIGKILL simulation: the network server and both logs stop
// dead — no flush, no graceful releases, queued commits fail.
func (srv *durableServer) kill() {
	_ = srv.net.Kill()
	srv.wal.Kill()
	srv.rwal.Kill()
}

// writerLoop hammers one file with sequence-stamped writes until stop,
// recording the last acknowledged sequence and the first error.
type writerLoop struct {
	stop    atomic.Bool
	acked   atomic.Int64
	err     atomic.Value // first app-visible error, as a string
	retried atomic.Int64
}

func (w *writerLoop) run(wg *sync.WaitGroup, write func(seq int64) error) {
	defer wg.Done()
	for seq := int64(1); !w.stop.Load(); seq++ {
		start := time.Now()
		if err := write(seq); err != nil {
			w.err.CompareAndSwap(nil, err.Error())
			return
		}
		if time.Since(start) > 50*time.Millisecond {
			w.retried.Add(1) // the call rode out an outage internally
		}
		w.acked.Store(seq)
	}
}

func payload(seq int64) []byte { return []byte(fmt.Sprintf("%012d", seq)) }

// TestKillRestartDurableServer is the E19 acceptance scenario: kill the
// durable server mid-load, restart it against the same directories, and
// require transparent recovery — same instance identity, zero
// application-visible client errors, every acked write readable.
func TestKillRestartDurableServer(t *testing.T) {
	walDir, rwalDir := t.TempDir(), t.TempDir()
	stateFile := t.TempDir() + "/netd.state"

	srv := startDurableServer(t, "127.0.0.1:0", walDir, rwalDir, stateFile)
	addr := srv.net.Addr()
	firstInstance := srv.net.Instance()

	cli := newFaultMachine(t, "C", nil, fastCfg())
	cliEnv := cli.env("client")
	ctxObj, err := cli.net.ImportRootObject(cliEnv, addr, "naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	cliEnv.Set(reconnectable.ContextVar, ctxObj)
	cliEnv.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 2000, Backoff: 5 * time.Millisecond})
	cliEnv.Set(replicon.PolicyVar, &replicon.Policy{MaxRounds: 2000, Backoff: 5 * time.Millisecond})

	fsObj, err := cli.net.ImportRootObject(cliEnv, addr, "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fs := filesys.FileSystem{Obj: fsObj}
	rf, err := fs.Create("journal")
	if err != nil {
		t.Fatal(err)
	}

	rfsObj, err := cli.net.ImportRootObject(cliEnv, addr, "rfs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	rfs := filesys.FileSystem{Obj: rfsObj}
	pf, err := rfs.Create("ledger")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var reconW, replW writerLoop
	wg.Add(2)
	go reconW.run(&wg, func(seq int64) error {
		_, err := rf.Write(0, payload(seq))
		return err
	})
	go replW.run(&wg, func(seq int64) error {
		_, err := pf.Write(0, payload(seq))
		return err
	})

	// Let the load and at least a few sweeper state flushes happen.
	time.Sleep(200 * time.Millisecond)

	srv.kill()
	srv = startDurableServer(t, addr, walDir, rwalDir, stateFile)
	t.Cleanup(func() {
		_ = srv.net.Close()
		_ = srv.wal.Close()
		_ = srv.rwal.Close()
	})

	if got := srv.net.Instance(); got != firstInstance {
		t.Fatalf("restarted instance = %#x, want the first boot's %#x", got, firstInstance)
	}

	// Ride through the restart and keep writing on the far side.
	time.Sleep(400 * time.Millisecond)
	reconW.stop.Store(true)
	replW.stop.Store(true)
	wg.Wait()

	if e := reconW.err.Load(); e != nil {
		t.Fatalf("reconnectable writer saw an application-visible error: %v", e)
	}
	if e := replW.err.Load(); e != nil {
		t.Fatalf("replicon writer saw an application-visible error: %v", e)
	}
	if reconW.acked.Load() == 0 || replW.acked.Load() == 0 {
		t.Fatalf("writers never made progress: recon=%d repl=%d",
			reconW.acked.Load(), replW.acked.Load())
	}

	// No acked write lost: the last acknowledged payload of each stream
	// must be what the recovered stores serve.
	if data, err := rf.Read(0, 12); err != nil || string(data) != string(payload(reconW.acked.Load())) {
		t.Fatalf("reconnectable file after restart = %q, %v; want %q",
			data, err, payload(reconW.acked.Load()))
	}
	if data, err := pf.Read(0, 12); err != nil || string(data) != string(payload(replW.acked.Load())) {
		t.Fatalf("replicated file after restart = %q, %v; want %q",
			data, err, payload(replW.acked.Load()))
	}
}

// TestRestartRecoversIdentityAndExports boots a durable server, lets a
// client resolve state, restarts it cleanly, and checks the recovery
// invariants directly: same instance, same address, rebound root
// exports serving the client's old proxies without a re-import.
func TestRestartRecoversIdentityAndExports(t *testing.T) {
	walDir, rwalDir := t.TempDir(), t.TempDir()
	stateFile := t.TempDir() + "/netd.state"

	srv := startDurableServer(t, "127.0.0.1:0", walDir, rwalDir, stateFile)
	addr := srv.net.Addr()
	firstInstance := srv.net.Instance()

	cli := newFaultMachine(t, "C", nil, fastCfg())
	cliEnv := cli.env("client")
	ctxObj, err := cli.net.ImportRootObject(cliEnv, addr, "naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	cliEnv.Set(reconnectable.ContextVar, ctxObj)
	cliEnv.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 500, Backoff: 5 * time.Millisecond})

	fsObj, err := cli.net.ImportRootObject(cliEnv, addr, "fs", filesys.FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	fs := filesys.FileSystem{Obj: fsObj}
	f, err := fs.Create("persist")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("durable")); err != nil {
		t.Fatal(err)
	}

	// A graceful close flushes the final state; the restart must still
	// look like the same process to the client.
	_ = srv.net.Close()
	srv.wal.Kill()
	srv.rwal.Kill()

	srv = startDurableServer(t, addr, walDir, rwalDir, stateFile)
	t.Cleanup(func() {
		_ = srv.net.Close()
		_ = srv.wal.Close()
		_ = srv.rwal.Close()
	})
	if got := srv.net.Instance(); got != firstInstance {
		t.Fatalf("instance after restart = %#x, want %#x", got, firstInstance)
	}
	if got := srv.net.Addr(); got != addr {
		t.Fatalf("address after restart = %q, want %q", got, addr)
	}

	// The client's pre-restart file proxy recovers through re-resolve
	// against the rebound naming root — no fresh bootstrap import.
	data, err := f.Read(0, 7)
	if err != nil || string(data) != "durable" {
		t.Fatalf("read across restart = %q, %v", data, err)
	}
}
