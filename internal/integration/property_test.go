package integration

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// TestObjectModelMoveSemantics is experiment E11: the §3.2 object model,
// checked over random operation sequences. An object can only exist in
// one place at a time — transmitting it consumes it — while copying
// first yields two distinct objects pointing to the same underlying
// state. Whatever sequence of copy/transfer/marshal_copy/consume/invoke
// is applied:
//
//   - live objects always invoke successfully,
//   - consumed objects always fail with ErrConsumed,
//   - the server's unreferenced notification fires exactly when the last
//     identifier dies, never earlier.
func TestObjectModelMoveSemantics(t *testing.T) {
	f := func(script []uint8) bool {
		k := kernel.New("prop")
		srv, err := sctest.NewEnv(k, "server", singleton.Register)
		if err != nil {
			return false
		}
		cli, err := sctest.NewEnv(k, "client", singleton.Register)
		if err != nil {
			return false
		}
		unref := make(chan struct{})
		ctr := &sctest.Counter{}
		root, _ := singleton.Export(srv, sctest.CounterMT, ctr.Skeleton(), func() { close(unref) })

		// live tracks objects that must work; dead tracks consumed ones.
		live := []*core.Object{root}
		var dead []*core.Object

		for _, b := range script {
			if len(live) == 0 {
				break
			}
			i := int(b>>2) % len(live)
			obj := live[i]
			switch b % 4 {
			case 0: // copy
				cp, err := obj.Copy()
				if err != nil {
					return false
				}
				live = append(live, cp)
			case 1: // transfer (move): the source dies, the clone lives
				moved, err := sctest.Transfer(obj, cli, sctest.CounterMT)
				if err != nil {
					return false
				}
				live[i] = moved
				dead = append(dead, obj)
			case 2: // marshal_copy: the source survives, a clone appears
				buf := buffer.New(64)
				if err := obj.MarshalCopy(buf); err != nil {
					return false
				}
				clone, err := core.Unmarshal(cli, sctest.CounterMT, buf)
				if err != nil {
					return false
				}
				live = append(live, clone)
			case 3: // consume
				if err := obj.Consume(); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				dead = append(dead, obj)
			}
		}

		// Live objects invoke; dead objects refuse.
		for _, obj := range live {
			if _, err := sctest.Get(obj); err != nil {
				return false
			}
		}
		for _, obj := range dead {
			if _, err := sctest.Get(obj); !errors.Is(err, core.ErrConsumed) {
				return false
			}
		}

		// While identifiers remain, no unreferenced notification.
		if len(live) > 0 {
			select {
			case <-unref:
				return false
			default:
			}
		}
		// Consume the rest: the notification must arrive, exactly because
		// the last identifier died.
		for _, obj := range live {
			if err := obj.Consume(); err != nil {
				return false
			}
		}
		select {
		case <-unref:
			return true
		case <-time.After(2 * time.Second):
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelRefcountInvariant drives random copy/delete/move/adopt
// sequences against one door and checks the bookkeeping: the door stays
// alive while any identifier or in-flight reference exists, and the
// kernel's live-door count returns to its baseline afterwards.
func TestKernelRefcountInvariant(t *testing.T) {
	f := func(script []uint8) bool {
		k := kernel.New("prop")
		a := k.NewDomain("a")
		b := k.NewDomain("b")
		base := k.LiveDoors()
		h, door := a.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
			return buffer.New(0), nil
		}, nil)
		_ = door

		type holder struct {
			dom *kernel.Domain
			h   kernel.Handle
		}
		held := []holder{{a, h}}
		for _, op := range script {
			if len(held) == 0 {
				break
			}
			i := int(op>>2) % len(held)
			cur := held[i]
			switch op % 3 {
			case 0: // copy
				nh, err := cur.dom.CopyDoor(cur.h)
				if err != nil {
					return false
				}
				held = append(held, holder{cur.dom, nh})
			case 1: // delete
				if err := cur.dom.DeleteDoor(cur.h); err != nil {
					return false
				}
				held = append(held[:i], held[i+1:]...)
			case 2: // move to the other domain through a buffer
				buf := buffer.New(16)
				if err := cur.dom.MoveToBuffer(cur.h, buf); err != nil {
					return false
				}
				dst := a
				if cur.dom == a {
					dst = b
				}
				nh, err := dst.AdoptFromBuffer(buf)
				if err != nil {
					return false
				}
				held[i] = holder{dst, nh}
			}
		}
		// Any surviving identifier must still reach the door.
		for _, cur := range held {
			if _, err := cur.dom.Call(cur.h, buffer.New(0)); err != nil {
				return false
			}
		}
		for _, cur := range held {
			if err := cur.dom.DeleteDoor(cur.h); err != nil {
				return false
			}
		}
		// The door object is reclaimed once the last identifier dies.
		deadline := time.Now().Add(2 * time.Second)
		for k.LiveDoors() != base {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
