package cache

import (
	"repro/internal/buffer"
	"repro/internal/core"
)

// OpSet is a set of operation numbers used to classify an interface's
// operations as cacheable or invalidating. Generated stubs derive
// operation numbers from name hashes, so the set is explicit rather than
// a small-integer bitmask.
type OpSet map[uint32]struct{}

// NewOpSet builds a set from operation numbers.
func NewOpSet(ops ...core.OpNum) OpSet {
	s := make(OpSet, len(ops))
	for _, op := range ops {
		s[uint32(op)] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s OpSet) Has(op uint32) bool {
	_, ok := s[op]
	return ok
}

// MarshalTo writes the set into buf (sorted order is not required; sets
// are small and compared only by membership).
func (s OpSet) MarshalTo(buf *buffer.Buffer) {
	buf.WriteUvarint(uint64(len(s)))
	for op := range s {
		buf.WriteUint32(op)
	}
}

// ReadOpSet consumes a set from buf.
func ReadOpSet(buf *buffer.Buffer) (OpSet, error) {
	n, err := buf.ReadUvarint()
	if err != nil {
		return nil, err
	}
	s := make(OpSet, n)
	for i := uint64(0); i < n; i++ {
		op, err := buf.ReadUint32()
		if err != nil {
			return nil, err
		}
		s[op] = struct{}{}
	}
	return s, nil
}
