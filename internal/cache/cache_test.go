package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

func setup(t *testing.T) (*Manager, *core.Env, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	mgrEnv, err := sctest.NewEnv(k, "cachemgr", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	srvEnv, err := sctest.NewEnv(k, "server", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(mgrEnv), mgrEnv, srvEnv
}

// clientFor wires a cache door in front of a counter server and returns a
// handle callable from the manager's environment plus the counter.
func clientFor(t *testing.T, m *Manager, srv *core.Env) (kernel.Handle, *sctest.Counter, kernel.Handle) {
	t.Helper()
	ctr := &sctest.Counter{}
	d1, _ := srv.Domain.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		reply := buffer.New(64)
		// A plain stub-style server: [opnum][args] → [status][results].
		skel := ctr.Skeleton()
		op, err := req.ReadUint32()
		if err != nil {
			return nil, err
		}
		results := buffer.New(32)
		if err := skel.Dispatch(core.OpNum(op), req, results); err != nil {
			return nil, err
		}
		reply.Splice(results)
		return reply, nil
	}, nil)

	// Present D1 through the manager's own Spring interface.
	cp, err := m.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	mgrObj, err := sctest.Transfer(cp, srv, ManagerMT)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Client{Obj: mgrObj}.Register(d1, NewOpSet(sctest.OpGet), NewOpSet(sctest.OpAdd))
	if err != nil {
		t.Fatal(err)
	}
	return d2, ctr, d1
}

// call performs a raw [opnum][args] call through h.
func call(t *testing.T, dom *kernel.Domain, h kernel.Handle, op core.OpNum, args func(*buffer.Buffer)) *buffer.Buffer {
	t.Helper()
	req := buffer.New(32)
	req.WriteUint32(uint32(op))
	if args != nil {
		args(req)
	}
	reply, err := dom.Call(h, req)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestHitMissForward(t *testing.T) {
	m, _, srv := setup(t)
	d2, ctr, _ := clientFor(t, m, srv)

	call(t, srv.Domain, d2, sctest.OpGet, nil) // miss
	call(t, srv.Domain, d2, sctest.OpGet, nil) // hit
	if s := m.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if ctr.Calls() != 1 {
		t.Fatalf("server calls = %d, want 1", ctr.Calls())
	}
	// An invalidating op forwards and clears.
	call(t, srv.Domain, d2, sctest.OpAdd, func(b *buffer.Buffer) { b.WriteInt64(5) })
	if s := m.Stats(); s.Invalidns != 1 || s.Forwards != 1 {
		t.Fatalf("stats = %+v", s)
	}
	reply := call(t, srv.Domain, d2, sctest.OpGet, nil)
	if v, _ := reply.ReadInt64(); v != 5 {
		t.Fatalf("get after invalidation = %d, want 5 (stale cache)", v)
	}
}

func TestDistinctArgumentsDistinctEntries(t *testing.T) {
	m, _, srv := setup(t)
	d2, ctr, _ := clientFor(t, m, srv)
	_ = ctr

	// Boom is neither cacheable nor invalidating here; use Get with
	// different "argument" bytes by faking two different cacheable calls:
	// the op is Get, the key includes the args.
	call(t, srv.Domain, d2, sctest.OpGet, nil)
	call(t, srv.Domain, d2, sctest.OpGet, func(b *buffer.Buffer) { b.WriteInt64(1) })
	if s := m.Stats(); s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 distinct misses", s)
	}
}

func TestEntriesDedupeBySameDoor(t *testing.T) {
	m, _, srv := setup(t)
	_, _, d1 := clientFor(t, m, srv)

	// Registering the same server door again must share the entry (and
	// therefore the cache).
	cp, err := m.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	mgrObj, err := sctest.Transfer(cp, srv, ManagerMT)
	if err != nil {
		t.Fatal(err)
	}
	d2b, err := Client{Obj: mgrObj}.Register(d1, NewOpSet(sctest.OpGet), NewOpSet(sctest.OpAdd))
	if err != nil {
		t.Fatal(err)
	}
	if entries := m.EntryCount(); entries != 1 {
		t.Fatalf("entries = %d, want 1 (dedupe by door identity)", entries)
	}
	_ = d2b
}

func TestDoorCarryingCallsNotCached(t *testing.T) {
	m, _, srv := setup(t)
	d2, ctr, _ := clientFor(t, m, srv)

	// A cacheable op whose arguments carry a door must be forwarded, not
	// served from (or stored in) the cache: capabilities cannot replay.
	mk := func() *buffer.Buffer {
		req := buffer.New(32)
		req.WriteUint32(uint32(sctest.OpGet))
		h, _ := srv.Domain.CreateDoor(func(*buffer.Buffer) (*buffer.Buffer, error) {
			return buffer.New(0), nil
		}, nil)
		if err := srv.Domain.MoveToBuffer(h, req); err != nil {
			t.Fatal(err)
		}
		return req
	}
	for i := 0; i < 2; i++ {
		req := mk()
		reply, err := srv.Domain.Call(d2, req)
		if err != nil {
			t.Fatal(err)
		}
		kernel.ReleaseBufferDoors(reply)
	}
	if s := m.Stats(); s.Hits != 0 {
		t.Fatalf("door-carrying call served from cache: %+v", s)
	}
	if ctr.Calls() != 2 {
		t.Fatalf("server calls = %d, want 2", ctr.Calls())
	}
}

func TestOpSetRoundTrip(t *testing.T) {
	f := func(ops []uint32) bool {
		s := make(OpSet, len(ops))
		for _, op := range ops {
			s[op] = struct{}{}
		}
		b := buffer.New(64)
		s.MarshalTo(b)
		got, err := ReadOpSet(b)
		if err != nil || len(got) != len(s) {
			return false
		}
		for op := range s {
			if !got.Has(op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpSetHelpers(t *testing.T) {
	s := NewOpSet(1, 2, 300)
	if !s.Has(1) || !s.Has(300) || s.Has(3) {
		t.Fatalf("membership wrong: %v", s)
	}
	var empty OpSet
	if empty.Has(0) {
		t.Fatal("empty set has members")
	}
	b := buffer.New(8)
	empty.MarshalTo(b)
	got, err := ReadOpSet(b)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = %v, %v", got, err)
	}
}

func TestReadOpSetTruncated(t *testing.T) {
	b := buffer.New(8)
	b.WriteUvarint(5) // claims 5 entries, provides none
	if _, err := ReadOpSet(b); err == nil {
		t.Fatal("truncated op set accepted")
	}
}
