package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// rawEntry registers a raw door server with the manager (bypassing the
// Spring stub machinery) and returns a handle to the cache door, callable
// from dom.
func rawEntry(t *testing.T, m *Manager, dom *kernel.Domain, proc kernel.ServerProc, cacheable, invalidate OpSet) kernel.Handle {
	t.Helper()
	d1, _ := dom.CreateDoor(proc, nil)
	ref, err := dom.RefOf(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := m.register(ref, cacheable, invalidate)
	return dom.AdoptRef(d2)
}

func rawReq(op uint32, key uint64) *buffer.Buffer {
	req := buffer.New(16)
	req.WriteUint32(op)
	req.WriteUint64(key)
	return req
}

// TestMissCoalescing is the thundering-herd regression test: concurrent
// misses for one key must collapse into a single server call, with the
// followers sharing the leader's reply.
func TestMissCoalescing(t *testing.T) {
	m, _, srv := setup(t)

	var serverCalls atomic.Int32
	gate := make(chan struct{})
	d2 := rawEntry(t, m, srv.Domain, func(req *buffer.Buffer) (*buffer.Buffer, error) {
		serverCalls.Add(1)
		<-gate // hold the leader's call open while followers pile up
		out := buffer.New(16)
		out.WriteUint64(42)
		return out, nil
	}, NewOpSet(0), nil)

	const followers = 7
	results := make(chan uint64, followers+1)
	do := func() {
		rep, err := srv.Domain.Call(d2, rawReq(0, 1))
		if err != nil {
			t.Error(err)
			results <- 0
			return
		}
		v, _ := rep.ReadUint64()
		results <- v
	}

	go do() // leader
	deadline := time.Now().Add(5 * time.Second)
	for serverCalls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < followers; i++ {
		go do()
	}
	// Wait until every follower has attached to the leader's flight, then
	// let the server reply.
	for m.Stats().CoalescedMisses < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers coalesced", m.Stats().CoalescedMisses, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	for i := 0; i < followers+1; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("reply %d = %d, want 42", i, v)
		}
	}
	if n := serverCalls.Load(); n != 1 {
		t.Fatalf("server called %d times for one herd, want 1", n)
	}
	s := m.Stats()
	if s.Misses != 1 || s.CoalescedMisses != followers {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", s, followers)
	}
}

// TestConcurrentHitMissInvalidate hammers one entry with a mix of hot
// reads, cold reads and invalidating writes (for -race), then checks the
// counters add up: every cacheable read is exactly one of hit, miss or
// coalesced miss.
func TestConcurrentHitMissInvalidate(t *testing.T) {
	m, _, srv := setup(t)

	d2 := rawEntry(t, m, srv.Domain, func(req *buffer.Buffer) (*buffer.Buffer, error) {
		out := buffer.New(16)
		out.WriteUint64(7)
		return out, nil
	}, NewOpSet(0), NewOpSet(1))

	const goroutines = 8
	const iters = 300
	var reads, writes atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var req *buffer.Buffer
				switch i % 8 {
				case 7:
					req = rawReq(1, 0) // invalidating write
					writes.Add(1)
				case 5:
					req = rawReq(0, uint64(g*iters+i)) // cold read
					reads.Add(1)
				default:
					req = rawReq(0, 0) // hot read
					reads.Add(1)
				}
				if _, err := srv.Domain.Call(d2, req); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := m.Stats()
	if got := s.Hits + s.Misses + s.CoalescedMisses; got != reads.Load() {
		t.Fatalf("hits(%d)+misses(%d)+coalesced(%d) = %d, want %d reads",
			s.Hits, s.Misses, s.CoalescedMisses, got, reads.Load())
	}
	if s.Invalidns != writes.Load() {
		t.Fatalf("invalidations = %d, want %d", s.Invalidns, writes.Load())
	}
}

// TestReplyBudgetBounded pushes a 10 MiB working set through a manager
// with a 1 MiB reply budget: the live bytes must stay within budget, the
// overflow must surface as evictions, and the most recently used subset
// must still be served from cache.
func TestReplyBudgetBounded(t *testing.T) {
	k := kernel.New("m1")
	mgrEnv, err := sctest.NewEnv(k, "cachemgr", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	srvEnv, err := sctest.NewEnv(k, "server", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1 << 20
	m := NewManagerWith(mgrEnv, Config{ReplyBudget: budget})

	payload := make([]byte, 64<<10)
	d2 := rawEntry(t, m, srvEnv.Domain, func(req *buffer.Buffer) (*buffer.Buffer, error) {
		out := buffer.New(len(payload))
		out.WriteRaw(payload)
		return out, nil
	}, NewOpSet(0), nil)

	const keys = 160 // × 64 KiB = 10 MiB working set
	for i := 0; i < keys; i++ {
		if _, err := srvEnv.Domain.Call(d2, rawReq(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if live := m.Stats().BytesLive; live > budget {
			t.Fatalf("bytes_live = %d after key %d, budget %d", live, i, budget)
		}
	}
	s := m.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions with a %d-byte budget and 10 MiB stored", budget)
	}
	if s.BytesLive > budget {
		t.Fatalf("bytes_live = %d, budget %d", s.BytesLive, budget)
	}

	// The hot (most recently used) subset must still hit.
	before := m.Stats().Hits
	for i := keys - 5; i < keys; i++ {
		if _, err := srvEnv.Domain.Call(d2, rawReq(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if hits := m.Stats().Hits - before; hits != 5 {
		t.Fatalf("hot-subset hits = %d/5 after cold sweep", hits)
	}
}

// TestAllocsCacheHit guards the hit path: serving a cached reply from a
// pooled buffer must cost at most 2 allocations per call.
func TestAllocsCacheHit(t *testing.T) {
	m, _, srv := setup(t)

	d2 := rawEntry(t, m, srv.Domain, func(req *buffer.Buffer) (*buffer.Buffer, error) {
		out := buffer.New(16)
		out.WriteUint64(7)
		return out, nil
	}, NewOpSet(0), nil)

	req := buffer.New(16)
	load := func() {
		req.Reset()
		req.WriteUint32(0)
		req.WriteUint64(1)
	}
	load()
	if _, err := srv.Domain.Call(d2, req); err != nil { // prime the cache
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		load()
		rep, err := srv.Domain.Call(d2, req)
		if err != nil {
			t.Fatal(err)
		}
		buffer.Put(rep)
	}); n > 2 {
		t.Fatalf("cache-hit serve allocates %.1f objects/op, want <= 2", n)
	}
}
