// Package cache implements the machine-local cache manager used by the
// caching subcontract (§8.2), originally developed for the Spring file
// system.
//
// A cache manager accepts registrations of server doors (D1) and hands
// back cache doors (D2). All invocations on a cacheable object then go to
// the cache manager on the local machine, which serves cacheable
// operations from its cache and forwards everything else to the server,
// invalidating affected entries on mutating operations.
//
// Which operations are cacheable and which invalidate is the exporting
// server's knowledge; it travels with the object as two operation sets,
// so the manager itself stays generic (the consistency protocol between
// machines remains the exporting service's business, as in the Spring
// file system).
//
// The manager is built for many cores hammering it at once (E16):
//
//   - Entries are indexed by kernel door identity in a sharded map, so
//     registration is a keyed lookup under one shard lock, not a linear
//     scan under a global one.
//   - Each entry's reply cache is a bounded LRU with a configurable byte
//     budget; storing past the budget evicts least-recently-used replies
//     (gauges cache.evictions / cache.bytes_live).
//   - Concurrent misses for one key coalesce into a single server call;
//     the waiters share the leader's reply (gauge
//     cache.coalesced_misses).
//   - Hits are served from pooled buffers and counted with atomics; the
//     hit path takes only the entry lock for the LRU touch and allocates
//     at most the reply buffer.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
	"repro/internal/trace"
)

// ManagerType is the cache manager interface's type identifier.
const ManagerType core.TypeID = "spring.cache_manager"

// Manager operation numbers.
const (
	opRegister core.OpNum = iota
	opStats
)

// ManagerMT is the cache manager method table.
var ManagerMT = &core.MTable{
	Type:      ManagerType,
	DefaultSC: singleton.SCID,
	Ops:       []string{"register", "stats"},
}

func init() {
	core.MustRegisterType(ManagerType, core.ObjectType)
	core.MustRegisterMTable(ManagerMT)
}

// scStats mirrors the manager's hit/miss counters into the caching
// subcontract's scstats block: the manager is the only layer that knows
// whether an invocation was served locally.
var scStats = scstats.For("caching")

// Named gauges for the manager's resource state, shared by every manager
// in the process (the scstats registry is process-wide).
var (
	gEvictions = scstats.GaugeFor("cache.evictions")
	gBytesLive = scstats.GaugeFor("cache.bytes_live")
	gCoalesced = scstats.GaugeFor("cache.coalesced_misses")

	// hMissFill times the leader's backing fetch on a cache miss — the
	// server round trip that fills the entry. Hits and coalesced
	// followers never touch it, so the histogram prices exactly the
	// cold path. Exposed as cache_miss_fill_seconds.
	hMissFill = scstats.HistFor("cache.miss_fill")
)

// Trace names: hits and coalesced waits are instantaneous events; a miss
// is a real span wrapping the leader's server call, so a traced cacheable
// call shows exactly which leg paid the server round trip.
var (
	spanHit       = trace.Name("cache.hit")
	spanMiss      = trace.Name("cache.miss")
	spanCoalesced = trace.Name("cache.coalesced")
)

// DefaultReplyBudget is the per-entry reply-cache byte budget used when
// Config.ReplyBudget is zero.
const DefaultReplyBudget = 64 << 20

// replyOverhead approximates the bookkeeping bytes charged per cached
// reply on top of its key and payload (node, map slot, list links).
const replyOverhead = 96

// Config tunes a Manager.
type Config struct {
	// ReplyBudget bounds the bytes (keys + payloads + bookkeeping) the
	// reply cache of one entry may hold; storing past it evicts the
	// least-recently-used replies. 0 means DefaultReplyBudget; negative
	// means unbounded.
	ReplyBudget int64
}

func (c Config) budget() int64 {
	switch {
	case c.ReplyBudget == 0:
		return DefaultReplyBudget
	case c.ReplyBudget < 0:
		return 0 // unbounded
	default:
		return c.ReplyBudget
	}
}

// Stats counts cache activity, for the E6/E16 experiments. BytesLive is
// an instantaneous level; everything else is a monotonic count.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Forwards  uint64 // non-cacheable operations passed through
	Invalidns uint64 // invalidations triggered by mutating operations

	CoalescedMisses uint64 // misses that shared another caller's server call
	Evictions       uint64 // replies evicted by the LRU byte budget
	BytesLive       int64  // bytes currently held across all reply caches
}

// nShards must be a power of two. Registration traffic is spread over the
// shards by door identity.
const nShards = 16

// shard is one slice of the entry index.
type shard struct {
	mu      sync.Mutex
	entries map[uint64]*entry // door id → entry
}

// reply is one cached reply: an LRU list node owning an immutable byte
// snapshot. size charges key + payload + overhead against the budget.
type reply struct {
	key        string
	data       []byte
	size       int64
	prev, next *reply
}

// flight is one in-progress miss. Followers wait on done and then share
// data/err; data is nil when the leader's reply was uncacheable (it
// carried door references), in which case followers issue their own call.
// done is created under entry.mu by the first follower, so an uncontended
// miss never allocates a channel.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// entry is the per-server-door cache state.
type entry struct {
	m   *Manager
	ref kernel.Ref // reference to the server door (for identity + calls)
	h   kernel.Handle

	mu      sync.Mutex
	replies map[string]*reply  // (opnum||args) → LRU node
	flights map[string]*flight // (opnum||args) → in-progress miss
	head    *reply             // most recently used
	tail    *reply             // least recently used
	bytes   int64              // sum of reply sizes
	gen     uint64             // bumped by invalidation; stale flights don't store
	free    *reply             // evicted nodes kept for reuse (via next)
	nfree   int
	flfree  []*flight // completed follower-free flights kept for reuse
}

// maxFreeReplies caps the per-entry free list of evicted LRU nodes; in
// eviction steady state (one evict per store) reuse makes a store
// node-allocation-free.
const maxFreeReplies = 32

// Manager is a cache manager server.
type Manager struct {
	env *core.Env
	cfg Config

	shards [nShards]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	forwards  atomic.Uint64
	invalidns atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	bytesLive atomic.Int64

	self *core.Object
	door *kernel.Door
}

// NewManager creates a cache manager served from env's domain with the
// default configuration, exported with the singleton subcontract.
func NewManager(env *core.Env) *Manager {
	return NewManagerWith(env, Config{})
}

// NewManagerWith creates a cache manager with an explicit configuration.
func NewManagerWith(env *core.Env, cfg Config) *Manager {
	m := &Manager{env: env, cfg: cfg}
	for i := range m.shards {
		m.shards[i].entries = make(map[uint64]*entry)
	}
	m.self, m.door = singleton.Export(env, ManagerMT, m.skeleton(), nil)
	return m
}

// Object returns the manager's own object (Copy before passing on).
func (m *Manager) Object() *core.Object { return m.self }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Hits:            m.hits.Load(),
		Misses:          m.misses.Load(),
		Forwards:        m.forwards.Load(),
		Invalidns:       m.invalidns.Load(),
		CoalescedMisses: m.coalesced.Load(),
		Evictions:       m.evictions.Load(),
		BytesLive:       m.bytesLive.Load(),
	}
}

// EntryCount reports the number of distinct server doors registered
// (entries are deduplicated by door identity).
func (m *Manager) EntryCount() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// lookup finds (or creates) the entry for a server door reference, keyed
// by the door's kernel-wide identity. The manager deduplicates by door
// identity, so every client of one remote object on this machine shares
// one cache.
func (m *Manager) lookup(ref kernel.Ref) *entry {
	id := ref.DoorID()
	s := &m.shards[id&(nShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		ref.Release()
		return e
	}
	e := &entry{
		m:       m,
		ref:     ref,
		h:       m.env.Domain.AdoptRef(ref.Dup()),
		replies: make(map[string]*reply),
	}
	s.entries[id] = e
	return e
}

// register wires a cache door (D2) in front of a server door (D1).
func (m *Manager) register(d1 kernel.Ref, cacheable, invalidate OpSet) kernel.Ref {
	e := m.lookup(d1)
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		return m.serve(e, cacheable, invalidate, req, info)
	}
	h, _ := m.env.Domain.CreateDoorInfo(proc, nil)
	ref, err := m.env.Domain.RefOf(h)
	if err != nil {
		panic(err) // the handle was created on the previous line
	}
	_ = m.env.Domain.DeleteDoor(h)
	return ref
}

// serve handles one invocation arriving at a cache door. The caller's
// invocation context rides along on forwarded calls, so a deadline set by
// the client still bounds the server leg of a cache miss.
func (m *Manager) serve(e *entry, cacheable, invalidate OpSet, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	op, err := req.PeekUint32()
	if err != nil {
		return nil, fmt.Errorf("cache: truncated call: %w", err)
	}
	switch {
	case cacheable.Has(op) && req.DoorCount() == 0:
		return m.serveCacheable(e, req, info)
	case invalidate.Has(op):
		m.invalidns.Add(1)
		m.forwards.Add(1)
		e.invalidate()
		return m.env.Domain.CallInfo(e.h, req, info)
	default:
		m.forwards.Add(1)
		return m.env.Domain.CallInfo(e.h, req, info)
	}
}

// serveCacheable serves one cacheable, door-free call: from the reply
// cache on a hit, by riding an in-flight miss for the same key when one
// exists, and by calling the server (and publishing the reply) otherwise.
func (m *Manager) serveCacheable(e *entry, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	key := req.Bytes() // (opnum||args): the full marshalled call

	e.mu.Lock()
	if n := e.replies[string(key)]; n != nil { // no-alloc map probe
		e.touchLocked(n)
		data := n.data
		e.mu.Unlock()
		m.hits.Add(1)
		scStats.Hits.Add(1)
		trace.Event(info, spanHit)
		return replyBuffer(data), nil
	}
	if fl := e.flights[string(key)]; fl != nil {
		if fl.done == nil {
			fl.done = make(chan struct{})
		}
		done := fl.done
		e.mu.Unlock()
		return m.followFlight(e, fl, done, req, info)
	}
	var fl *flight
	if n := len(e.flfree); n != 0 {
		fl = e.flfree[n-1]
		e.flfree = e.flfree[:n-1]
	} else {
		fl = &flight{}
	}
	if e.flights == nil {
		e.flights = make(map[string]*flight)
	}
	owned := string(key)
	e.flights[owned] = fl
	gen := e.gen
	e.mu.Unlock()

	m.misses.Add(1)
	scStats.Misses.Add(1)
	sp := trace.Begin(info, spanMiss)
	fillStart := hMissFill.Start()
	rep, err := m.env.Domain.CallInfo(e.h, req, info)
	hMissFill.ObserveSince(fillStart, info.ExemplarTrace())
	sp.End(info, err)

	// Only door-free replies are cacheable: a door reference is a
	// capability that cannot be replayed.
	var data []byte
	if err == nil && rep.DoorCount() == 0 {
		data = append([]byte(nil), rep.Bytes()...)
	}
	fl.data, fl.err = data, err
	e.mu.Lock()
	delete(e.flights, owned)
	if data != nil && e.gen == gen {
		e.storeLocked(owned, data)
	}
	done := fl.done
	if done == nil && len(e.flfree) < maxFreeReplies {
		// No follower ever attached (attaching happens under e.mu before
		// the delete above), so the leader is the flight's sole owner and
		// the next miss can reuse it.
		fl.data, fl.err = nil, nil
		e.flfree = append(e.flfree, fl)
	}
	e.mu.Unlock()
	if done != nil {
		close(done)
	}
	return rep, err
}

// followFlight waits for an in-flight miss for the same key and shares
// its outcome. A follower whose wait outlives its own context ends with
// that context's error, like any door call. A shared reply observed
// across an invalidation is still linearizable: the follower's read began
// before the invalidating write completed.
func (m *Manager) followFlight(e *entry, fl *flight, done <-chan struct{}, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	m.coalesced.Add(1)
	scStats.Coalesced.Add(1)
	gCoalesced.Add(1)
	trace.Event(info, spanCoalesced)
	if err := waitFlight(done, info); err != nil {
		return nil, err
	}
	if fl.err != nil {
		return nil, fl.err
	}
	if fl.data == nil {
		// The leader's reply carried doors and could not be shared;
		// fall back to a server call of our own.
		m.misses.Add(1)
		scStats.Misses.Add(1)
		return m.env.Domain.CallInfo(e.h, req, info)
	}
	return replyBuffer(fl.data), nil
}

// waitFlight blocks until the flight completes, bounded by the waiter's
// own invocation context.
func waitFlight(done <-chan struct{}, info *kernel.Info) error {
	if info == nil || (info.Cancel == nil && info.Deadline.IsZero()) {
		<-done
		return nil
	}
	var deadline <-chan time.Time
	if d, ok := info.Remaining(); ok {
		if d <= 0 {
			return kernel.ErrDeadlineExceeded
		}
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-done:
		return nil
	case <-info.Cancel:
		return kernel.ErrCancelled
	case <-deadline:
		return kernel.ErrDeadlineExceeded
	}
}

// replyBuffer copies an immutable cached snapshot into a pooled buffer
// the caller may consume (and recycle) freely.
func replyBuffer(data []byte) *buffer.Buffer {
	out := buffer.Get(len(data))
	out.WriteRaw(data)
	return out
}

// touchLocked moves n to the most-recently-used position.
func (e *entry) touchLocked(n *reply) {
	if e.head == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if e.tail == n {
		e.tail = n.prev
	}
	// Push front.
	n.prev = nil
	n.next = e.head
	if e.head != nil {
		e.head.prev = n
	}
	e.head = n
	if e.tail == nil {
		e.tail = n
	}
}

// storeLocked inserts a reply under key, charging the budget and evicting
// from the LRU tail until the entry fits. A reply larger than the whole
// budget is not cached at all. Counters are updated once per store, not
// once per eviction.
func (e *entry) storeLocked(key string, data []byte) {
	budget := e.m.cfg.budget()
	size := int64(len(key)) + int64(len(data)) + replyOverhead
	if budget > 0 && size > budget {
		return
	}
	delta := size
	if old := e.replies[key]; old != nil {
		e.unlinkLocked(old)
		delta -= old.size
		e.poolLocked(old)
	}
	n := e.free
	if n != nil {
		e.free = n.next
		e.nfree--
		n.next = nil
	} else {
		n = &reply{}
	}
	n.key, n.data, n.size = key, data, size
	e.replies[key] = n
	n.next = e.head
	if e.head != nil {
		e.head.prev = n
	}
	e.head = n
	if e.tail == nil {
		e.tail = n
	}
	evicted := 0
	for budget > 0 && e.bytes+delta > budget && e.tail != nil && e.tail != n {
		v := e.tail
		e.unlinkLocked(v)
		delete(e.replies, v.key)
		delta -= v.size
		e.poolLocked(v)
		evicted++
	}
	e.addBytes(delta)
	if evicted != 0 {
		e.m.evictions.Add(uint64(evicted))
		gEvictions.Add(int64(evicted))
	}
}

// unlinkLocked removes n from the list; byte accounting and the map slot
// are the caller's business.
func (e *entry) unlinkLocked(n *reply) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if e.head == n {
		e.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if e.tail == n {
		e.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// poolLocked returns an unlinked node to the entry's free list so the
// next store can reuse it.
func (e *entry) poolLocked(n *reply) {
	if e.nfree >= maxFreeReplies {
		return
	}
	n.key, n.data = "", nil
	n.next = e.free
	e.free = n
	e.nfree++
}

// addBytes moves the entry's byte charge and the process-wide level.
func (e *entry) addBytes(d int64) {
	e.bytes += d
	e.m.bytesLive.Add(d)
	gBytesLive.Add(d)
}

// invalidate clears the reply cache and bumps the generation so that
// in-flight misses started before the invalidation cannot store stale
// replies after it.
func (e *entry) invalidate() {
	e.mu.Lock()
	e.gen++
	if len(e.replies) != 0 {
		e.addBytes(-e.bytes)
		clear(e.replies)
		e.head, e.tail = nil, nil
	}
	e.mu.Unlock()
}

// skeleton serves the manager's own Spring interface.
func (m *Manager) skeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opRegister:
			slot, err := args.ReadDoor()
			if err != nil {
				return err
			}
			d1, ok := slot.(kernel.Ref)
			if !ok {
				return fmt.Errorf("cache: register: %T is not a door", slot)
			}
			cacheable, err := ReadOpSet(args)
			if err != nil {
				return err
			}
			invalidate, err := ReadOpSet(args)
			if err != nil {
				return err
			}
			results.WriteDoor(m.register(d1, cacheable, invalidate))
			return nil
		case opStats:
			s := m.Stats()
			results.WriteUint64(s.Hits)
			results.WriteUint64(s.Misses)
			results.WriteUint64(s.Forwards)
			results.WriteUint64(s.Invalidns)
			results.WriteUint64(s.CoalescedMisses)
			results.WriteUint64(s.Evictions)
			results.WriteInt64(s.BytesLive)
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

// Client is the client view of a cache manager.
type Client struct {
	Obj *core.Object
}

// Register presents a server door to the manager and receives a cache
// door. The caller keeps ownership of d1 (a copy is sent).
func (c Client) Register(d1 kernel.Handle, cacheable, invalidate OpSet) (kernel.Handle, error) {
	var d2 kernel.Handle
	err := stubs.Call(c.Obj, opRegister,
		func(b *buffer.Buffer) error {
			if err := c.Obj.Env.Domain.CopyToBuffer(d1, b); err != nil {
				return err
			}
			cacheable.MarshalTo(b)
			invalidate.MarshalTo(b)
			return nil
		},
		func(b *buffer.Buffer) error {
			var err error
			d2, err = c.Obj.Env.Domain.AdoptFromBuffer(b)
			return err
		})
	return d2, err
}

// RemoteStats fetches the manager's counters through its Spring interface.
func (c Client) RemoteStats() (Stats, error) {
	var s Stats
	err := stubs.Call(c.Obj, opStats, nil, func(b *buffer.Buffer) error {
		var err error
		if s.Hits, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.Misses, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.Forwards, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.Invalidns, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.CoalescedMisses, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.Evictions, err = b.ReadUint64(); err != nil {
			return err
		}
		s.BytesLive, err = b.ReadInt64()
		return err
	})
	return s, err
}
