// Package cache implements the machine-local cache manager used by the
// caching subcontract (§8.2), originally developed for the Spring file
// system.
//
// A cache manager accepts registrations of server doors (D1) and hands
// back cache doors (D2). All invocations on a cacheable object then go to
// the cache manager on the local machine, which serves cacheable
// operations from its cache and forwards everything else to the server,
// invalidating affected entries on mutating operations.
//
// Which operations are cacheable and which invalidate is the exporting
// server's knowledge; it travels with the object as two operation sets,
// so the manager itself stays generic (the consistency protocol between
// machines remains the exporting service's business, as in the Spring
// file system).
package cache

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// ManagerType is the cache manager interface's type identifier.
const ManagerType core.TypeID = "spring.cache_manager"

// Manager operation numbers.
const (
	opRegister core.OpNum = iota
	opStats
)

// ManagerMT is the cache manager method table.
var ManagerMT = &core.MTable{
	Type:      ManagerType,
	DefaultSC: singleton.SCID,
	Ops:       []string{"register", "stats"},
}

func init() {
	core.MustRegisterType(ManagerType, core.ObjectType)
	core.MustRegisterMTable(ManagerMT)
}

// scStats mirrors the manager's hit/miss counters into the caching
// subcontract's scstats block: the manager is the only layer that knows
// whether an invocation was served locally.
var scStats = scstats.For("caching")

// Stats counts cache activity, for the E6 experiment.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Forwards  uint64 // non-cacheable operations passed through
	Invalidns uint64 // invalidations triggered by mutating operations
}

// entry is the per-server-door cache state.
type entry struct {
	ref kernel.Ref // reference to the server door (for identity + calls)
	h   kernel.Handle

	mu      sync.Mutex
	replies map[string][]byte // (opnum||args) → reply bytes
}

// Manager is a cache manager server.
type Manager struct {
	env *core.Env

	mu      sync.Mutex
	entries []*entry
	stats   Stats

	self *core.Object
	door *kernel.Door
}

// NewManager creates a cache manager served from env's domain, exported
// with the singleton subcontract.
func NewManager(env *core.Env) *Manager {
	m := &Manager{env: env}
	m.self, m.door = singleton.Export(env, ManagerMT, m.skeleton(), nil)
	return m
}

// Object returns the manager's own object (Copy before passing on).
func (m *Manager) Object() *core.Object { return m.self }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// lookup finds (or creates) the entry for a server door reference. The
// manager deduplicates by door identity, so every client of one remote
// object on this machine shares one cache.
func (m *Manager) lookup(ref kernel.Ref) *entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		if e.ref.SameDoor(ref) {
			ref.Release()
			return e
		}
	}
	e := &entry{ref: ref, h: m.env.Domain.AdoptRef(ref.Dup()), replies: make(map[string][]byte)}
	m.entries = append(m.entries, e)
	return e
}

// register wires a cache door (D2) in front of a server door (D1).
func (m *Manager) register(d1 kernel.Ref, cacheable, invalidate OpSet) kernel.Ref {
	e := m.lookup(d1)
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		return m.serve(e, cacheable, invalidate, req, info)
	}
	h, _ := m.env.Domain.CreateDoorInfo(proc, nil)
	ref, err := m.env.Domain.RefOf(h)
	if err != nil {
		panic(err) // the handle was created on the previous line
	}
	_ = m.env.Domain.DeleteDoor(h)
	return ref
}

// serve handles one invocation arriving at a cache door. The caller's
// invocation context rides along on forwarded calls, so a deadline set by
// the client still bounds the server leg of a cache miss.
func (m *Manager) serve(e *entry, cacheable, invalidate OpSet, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	op, err := req.PeekUint32()
	if err != nil {
		return nil, fmt.Errorf("cache: truncated call: %w", err)
	}
	switch {
	case cacheable.Has(op) && req.DoorCount() == 0:
		key := string(req.Bytes())
		e.mu.Lock()
		cached, ok := e.replies[key]
		e.mu.Unlock()
		if ok {
			m.count(func(s *Stats) { s.Hits++ })
			scStats.Hits.Add(1)
			reply := make([]byte, len(cached))
			copy(reply, cached)
			return buffer.FromParts(reply, nil), nil
		}
		m.count(func(s *Stats) { s.Misses++ })
		scStats.Misses.Add(1)
		reply, err := m.env.Domain.CallInfo(e.h, req, info)
		if err != nil {
			return nil, err
		}
		// Only door-free replies are cacheable: a door reference is a
		// capability that cannot be replayed.
		if reply.DoorCount() == 0 {
			stored := make([]byte, len(reply.Bytes()))
			copy(stored, reply.Bytes())
			e.mu.Lock()
			e.replies[key] = stored
			e.mu.Unlock()
		}
		return reply, nil
	case invalidate.Has(op):
		m.count(func(s *Stats) { s.Invalidns++; s.Forwards++ })
		e.mu.Lock()
		clear(e.replies)
		e.mu.Unlock()
		return m.env.Domain.CallInfo(e.h, req, info)
	default:
		m.count(func(s *Stats) { s.Forwards++ })
		return m.env.Domain.CallInfo(e.h, req, info)
	}
}

func (m *Manager) count(f func(*Stats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// skeleton serves the manager's own Spring interface.
func (m *Manager) skeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opRegister:
			slot, err := args.ReadDoor()
			if err != nil {
				return err
			}
			d1, ok := slot.(kernel.Ref)
			if !ok {
				return fmt.Errorf("cache: register: %T is not a door", slot)
			}
			cacheable, err := ReadOpSet(args)
			if err != nil {
				return err
			}
			invalidate, err := ReadOpSet(args)
			if err != nil {
				return err
			}
			results.WriteDoor(m.register(d1, cacheable, invalidate))
			return nil
		case opStats:
			s := m.Stats()
			results.WriteUint64(s.Hits)
			results.WriteUint64(s.Misses)
			results.WriteUint64(s.Forwards)
			results.WriteUint64(s.Invalidns)
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

// Client is the client view of a cache manager.
type Client struct {
	Obj *core.Object
}

// Register presents a server door to the manager and receives a cache
// door. The caller keeps ownership of d1 (a copy is sent).
func (c Client) Register(d1 kernel.Handle, cacheable, invalidate OpSet) (kernel.Handle, error) {
	var d2 kernel.Handle
	err := stubs.Call(c.Obj, opRegister,
		func(b *buffer.Buffer) error {
			if err := c.Obj.Env.Domain.CopyToBuffer(d1, b); err != nil {
				return err
			}
			cacheable.MarshalTo(b)
			invalidate.MarshalTo(b)
			return nil
		},
		func(b *buffer.Buffer) error {
			var err error
			d2, err = c.Obj.Env.Domain.AdoptFromBuffer(b)
			return err
		})
	return d2, err
}

// RemoteStats fetches the manager's counters through its Spring interface.
func (c Client) RemoteStats() (Stats, error) {
	var s Stats
	err := stubs.Call(c.Obj, opStats, nil, func(b *buffer.Buffer) error {
		var err error
		if s.Hits, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.Misses, err = b.ReadUint64(); err != nil {
			return err
		}
		if s.Forwards, err = b.ReadUint64(); err != nil {
			return err
		}
		s.Invalidns, err = b.ReadUint64()
		return err
	})
	return s, err
}
