// Command scbench runs the paper's full experiment suite (DESIGN.md §4)
// and prints a consolidated report in the shape of the paper's §9.3
// evaluation: the subcontract mechanism's overheads, and the behaviour of
// each example subcontract. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	scbench [-quick] [-scstats]
//
// -scstats appends the per-subcontract metrics registry (calls, errors,
// context endings, latency histograms) accumulated over the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/scstats"
	"repro/internal/subcontracts/shm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var (
	quick = flag.Bool("quick", false, "run shorter benchmarks")
	stats = flag.Bool("scstats", false, "dump per-subcontract metrics after the run")

	telemetryAddr = flag.String("telemetry", "",
		"serve /metrics, /traces, /healthz and pprof on this address while the suite runs (empty = off)")
	traceSample = flag.Int("trace-sample", 0,
		"record a trace for 1 in N calls that arrive untraced (0 = only explicitly traced calls)")
	traceSlow = flag.Duration("trace-slow", 0,
		"tail-capture calls slower than this into /traces/slow, even when head sampling skips them (0 = off)")
	dispatchWorkers = flag.Int("dispatch-workers", 0,
		"dispatch pool workers for the E20 engine cells (0 = GOMAXPROCS, capped at 64)")
	dispatchInflight = flag.Int("dispatch-inflight", 0,
		"in-flight admission bound for the E20 engine cells (0 = default 1024)")
	stripes = flag.Int("stripes", 8,
		"client connections per peer for the E21 striped cells (the stripes=1 baseline always runs)")
	mixed = flag.Bool("mixed", false,
		"run only the E21 mixed small+bulk head-of-line workload (with -stripes) and exit")
)

// run executes one experiment body under the testing benchmark driver.
// With the telemetry plane up, each cell is bracketed by two /statz
// totals scrapes and the busiest subcontract's window percentiles print
// under the ns/op line — the plane observing the benchmark that runs it.
func run(name string, fn func(*testing.B)) testing.BenchmarkResult {
	prev := scrapeStatz()
	r := testing.Benchmark(fn)
	fmt.Printf("  %-44s %12.0f ns/op %10d B/op %8d allocs/op\n",
		name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	if line := statzCellLine(scrapeStatz(), prev); line != "" {
		fmt.Printf("      %s\n", line)
	}
	return r
}

// ---------------------------------------------------------------------
// /statz percentile bracketing.

// statzURL is set once the telemetry plane is listening; empty = skip
// the percentile brackets.
var statzURL string

// statzTotals is the subset of a /statz?window=0&buckets=1 response the
// cell brackets need: each subcontract's raw interval buckets.
type statzTotals struct {
	subs map[string][][3]int64 // name → [lo_ns, hi_ns, count] triples
}

func scrapeStatz() *statzTotals {
	if statzURL == "" {
		return nil
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(statzURL + "/statz?window=0&buckets=1")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var body struct {
		Subcontracts []struct {
			Name    string `json:"name"`
			Latency struct {
				Buckets [][3]int64 `json:"buckets"`
			} `json:"latency"`
		} `json:"subcontracts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	out := &statzTotals{subs: make(map[string][][3]int64)}
	for _, sc := range body.Subcontracts {
		out.subs[sc.Name] = sc.Latency.Buckets
	}
	return out
}

// statzCellLine diffs two totals scrapes and renders the busiest
// subcontract's window percentiles ("" when there is nothing to say).
func statzCellLine(cur, prev *statzTotals) string {
	if cur == nil || prev == nil {
		return ""
	}
	type win struct {
		name    string
		count   int64
		buckets [][3]int64
	}
	var best win
	for name, cb := range cur.subs {
		d := subStatzBuckets(cb, prev.subs[name])
		var n int64
		for _, b := range d {
			n += b[2]
		}
		if n > best.count {
			best = win{name: name, count: n, buckets: d}
		}
	}
	if best.count == 0 {
		return ""
	}
	q := func(p float64) time.Duration {
		return time.Duration(statzQuantile(best.buckets, p))
	}
	return fmt.Sprintf("statz[%s]: n=%d p50=%v p99=%v p999=%v",
		best.name, best.count, q(0.50), q(0.99), q(0.999))
}

// subStatzBuckets subtracts prev's counts from cur's, matching buckets
// on their bounds.
func subStatzBuckets(cur, prev [][3]int64) [][3]int64 {
	pc := make(map[[2]int64]int64, len(prev))
	for _, b := range prev {
		pc[[2]int64{b[0], b[1]}] = b[2]
	}
	out := make([][3]int64, 0, len(cur))
	for _, b := range cur {
		d := b[2] - pc[[2]int64{b[0], b[1]}]
		if d > 0 {
			out = append(out, [3]int64{b[0], b[1], d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// statzQuantile returns the q quantile in ns from interval [lo, hi,
// count] triples (hi −1 = unbounded), crediting each bucket at its
// upper bound.
func statzQuantile(buckets [][3]int64, q float64) int64 {
	var total int64
	for _, b := range buckets {
		total += b[2]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.9999)
	var seen int64
	for _, b := range buckets {
		seen += b[2]
		if seen >= rank {
			if b[1] < 0 {
				return b[0]
			}
			return b[1]
		}
	}
	last := buckets[len(buckets)-1]
	if last[1] < 0 {
		return last[0]
	}
	return last[1]
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func section(title string) {
	fmt.Printf("\n%s\n", title)
}

func main() {
	// Register the testing package's flags so -quick can shorten runs
	// through -test.benchtime.
	testing.Init()
	flag.Parse()
	trace.SetSampling(*traceSample)
	trace.SetSlowDefault(*traceSlow)
	if *telemetryAddr != "" {
		tp, err := telemetry.Start(*telemetryAddr)
		if err != nil {
			fmt.Println("note:", err)
		} else {
			defer tp.Close()
			statzURL = "http://" + tp.Addr()
			fmt.Printf("telemetry on http://%s\n", tp.Addr())
		}
	}
	if *quick {
		if err := flag.Set("test.benchtime", "100x"); err != nil {
			fmt.Println("note:", err)
		}
	}
	if *mixed {
		// The head-of-line cell on its own, for quick flush/stripe tuning:
		// two 64KiB bulk callers interfere with 8 small callers; compare
		// the p99 at -stripes 1 vs -stripes N.
		section(fmt.Sprintf("E21 mixed small+bulk head-of-line workload (stripes=1 vs stripes=%d)", *stripes))
		run("small calls under bulk load, 1 stripe", bench.E21MixedHoL(1))
		if *stripes > 1 {
			run(fmt.Sprintf("small calls under bulk load, %d stripes", *stripes), bench.E21MixedHoL(*stripes))
		}
		fmt.Println("\ndone.")
		return
	}
	fmt.Println("subcontract experiment suite (paper: SMLI TR-93-13, SOSP 1993)")
	fmt.Println("each experiment id matches DESIGN.md §4 and EXPERIMENTS.md")

	section("E1  §9.3 per-invocation subcontract overhead (minimal remote call)")
	direct := run("direct door call, 0B", bench.E1DirectDoorCall(0))
	single := run("stubs + singleton subcontract, 0B", bench.E1SubcontractCall("singleton", 0))
	run("stubs + simplex subcontract, 0B", bench.E1SubcontractCall("simplex", 0))
	run("simplex same-address-space fast path, 0B", bench.E1LocalOptimized(0))
	run("direct door call, 1KiB", bench.E1DirectDoorCall(1024))
	run("stubs + singleton subcontract, 1KiB", bench.E1SubcontractCall("singleton", 1024))
	fmt.Printf("  => subcontract machinery adds %.0f ns to a minimal call (paper: <2µs on a SPARCstation 2)\n",
		nsPerOp(single)-nsPerOp(direct))

	section("E2  §9.3 object-transmission overhead")
	raw := run("raw door identifier transfer", bench.E2RawDoorTransfer)
	one := run("subcontract object transfer, 1 door", bench.E2ObjectTransfer(1))
	run("subcontract object transfer, 3 doors", bench.E2ObjectTransfer(3))
	fmt.Printf("  => marshal/unmarshal + subcontract ID add %.0f ns per transmitted object\n",
		nsPerOp(one)-nsPerOp(raw))
	if hdr, objB, rawB, err := bench.WireSizes(); err == nil {
		fmt.Printf("  => E12 wire size: %d bytes/object vs %d raw (+%d-byte subcontract header)\n", objB, rawB, hdr)
	}

	section("E3  §7 full simplex object life cycle (create/transmit/invoke/copy/consume)")
	run("lifecycle", bench.E3Lifecycle)

	section("E4  §5 replicon: invocation and failover")
	run("invoke, 1 replica alive", bench.E4InvokeAllAlive(1))
	run("invoke, 3 replicas alive", bench.E4InvokeAllAlive(3))
	run("invoke, 5 replicas alive", bench.E4InvokeAllAlive(5))
	run("first call after 1 of 3 crash", bench.E4FailoverFirstCall(3, 1))
	run("first call after 4 of 5 crash", bench.E4FailoverFirstCall(5, 4))

	section("E5  §8.1 cluster vs simplex (doors per object; invoke cost)")
	run("export 1000 objects via simplex", bench.E5ExportDoors("simplex", 1000))
	run("export 1000 objects via cluster", bench.E5ExportDoors("cluster", 1000))
	run("invoke via simplex", bench.E5Invoke("simplex"))
	run("invoke via cluster (tag dispatch)", bench.E5Invoke("cluster"))

	section("E6  §8.2 caching subcontract vs plain remote file reads (loopback TCP)")
	cached := run("1KiB read, caching subcontract", bench.E6Read("caching"))
	plain := run("1KiB read, plain subcontract", bench.E6Read("plain"))
	fmt.Printf("  => local cache manager serves repeats %.1fx faster than crossing the wire\n",
		nsPerOp(plain)/nsPerOp(cached))
	run("95/5 read/write mix, caching", bench.E6Mixed("caching"))
	run("95/5 read/write mix, plain", bench.E6Mixed("plain"))

	section("E7  §8.3 reconnectable: crash recovery")
	run("steady state call", bench.E7SteadyState)
	run("first call after crash+restart", bench.E7ReconnectFirstCall)

	section("E8  §5.1.5 marshal_copy vs copy-then-marshal")
	run("copy then marshal, 1 door", bench.E8CopyThenMarshal(1))
	run("marshal_copy, 1 door", bench.E8MarshalCopy(1))
	run("copy then marshal, 4 doors", bench.E8CopyThenMarshal(4))
	run("marshal_copy, 4 doors", bench.E8MarshalCopy(4))

	section("E9  §5.1.4 invoke_preamble shared-buffer optimization")
	run("direct-into-region, 64B", bench.E9Echo(shm.Direct, 64))
	run("copy-after-marshal, 64B", bench.E9Echo(shm.CopyAfter, 64))
	run("direct-into-region, 4KiB", bench.E9Echo(shm.Direct, 4096))
	run("copy-after-marshal, 4KiB", bench.E9Echo(shm.CopyAfter, 4096))
	run("direct-into-region, 64KiB", bench.E9Echo(shm.Direct, 65536))
	run("copy-after-marshal, 64KiB", bench.E9Echo(shm.CopyAfter, 65536))

	section("E10 §6.2 dynamic subcontract discovery")
	run("cold (miss + name lookup + dynamic link)", bench.E10DiscoveryCold)
	run("warm (subcontract already linked)", bench.E10DiscoveryWarm)

	section("E13 §9.1 specialized stubs (type+subcontract combination)")
	gen := run("general-purpose stubs, 0B", bench.E13Call("generic", 0))
	spec := run("specialized stubs, 0B", bench.E13Call("specialized", 0))
	run("general-purpose stubs, 1KiB", bench.E13Call("generic", 1024))
	run("specialized stubs, 1KiB", bench.E13Call("specialized", 1024))
	fmt.Printf("  => specialization recovers %.0f ns of the subcontract indirection\n",
		nsPerOp(gen)-nsPerOp(spec))

	section("E14 invocation-context threading overhead (minimal call)")
	bare := run("context-free call, 0B", bench.E14Call("bare", 0))
	dl := run("with deadline, 0B", bench.E14Call("deadline", 0))
	run("deadline + cancel + trace, 0B", bench.E14Call("full", 0))
	run("with deadline, 1KiB", bench.E14Call("deadline", 1024))
	fmt.Printf("  => attaching a deadline adds %.0f ns to a minimal call\n",
		nsPerOp(dl)-nsPerOp(bare))

	section("E15 netd pipelined throughput over loopback TCP (calls/s)")
	run("1 caller, 0B", bench.E15Throughput(1, 0))
	seq := run("1 caller, 1KiB", bench.E15Throughput(1, 1024))
	run("8 callers, 0B", bench.E15Throughput(8, 0))
	run("8 callers, 1KiB", bench.E15Throughput(8, 1024))
	run("64 callers, 0B", bench.E15Throughput(64, 0))
	pipe := run("64 callers, 1KiB", bench.E15Throughput(64, 1024))
	run("64 callers, 64KiB", bench.E15Throughput(64, 65536))
	fmt.Printf("  => pipelining 64 callers over one connection lifts throughput %.1fx over serial calls\n",
		nsPerOp(seq)/nsPerOp(pipe))

	section("E16 lock-free local door path + scalable cache manager (intra-machine)")
	run("null local door call, 1 caller", bench.E16NullLocalCall(1))
	run("null local door call, 64 callers", bench.E16NullLocalCall(64))
	run("Dup+Release round trip, 1 caller", bench.E16DupRelease(1))
	run("Dup+Release round trip, 64 callers", bench.E16DupRelease(64))
	cold := run("cached read, cold keys, 64 callers", bench.E16CachedRead(64, "cold"))
	hot := run("cached read, hot key, 64 callers", bench.E16CachedRead(64, "hot"))
	run("cached read, 1/64 invalidating, 8 callers", bench.E16CachedRead(8, "inval"))
	fmt.Printf("  => serving the hot key from cache is %.1fx cheaper than missing to the server\n",
		nsPerOp(cold)/nsPerOp(hot))

	section("E17 distributed-tracing overhead (minimal call)")
	off := run("tracing hooks, sampling off, 1 caller", bench.E17TracedCall("off", 1))
	unsampled := run("sampling on, call not picked, 1 caller", bench.E17TracedCall("unsampled", 1))
	sampled := run("every call sampled, 1 caller", bench.E17TracedCall("sampled", 1))
	run("every call sampled, 64 callers", bench.E17TracedCall("sampled", 64))
	fmt.Printf("  => head sampling adds %.0f ns to an untraced call; recording a full span set adds %.0f ns\n",
		nsPerOp(unsampled)-nsPerOp(off), nsPerOp(sampled)-nsPerOp(off))

	section("E18 same-machine transport tier (unix control path + mapped bulk regions)")
	run("1 caller, 0B", bench.E18SameMachine(1, 0))
	run("1 caller, 1KiB", bench.E18SameMachine(1, 1024))
	tcp64 := run("1 caller, 64KiB over TCP (E15 baseline)", bench.E15Throughput(1, 65536))
	shm64 := run("1 caller, 64KiB over the tier", bench.E18SameMachine(1, 65536))
	run("64 callers, 64KiB over the tier", bench.E18SameMachine(64, 65536))
	fmt.Printf("  => the bulk-region hand-off moves a same-machine 64KiB call %.1fx faster than loopback TCP\n",
		nsPerOp(tcp64)/nsPerOp(shm64))

	section("E19 durable writes through the WAL group committer (1KiB, fsync before ack)")
	mem := run("in-memory store, 64 writers", bench.E19DurableWrite(64, 0))
	run("durable, 1 writer", bench.E19DurableWrite(1, 256))
	b1 := run("durable, 64 writers, batch cap 1", bench.E19DurableWrite(64, 1))
	b256 := run("durable, 64 writers, batch cap 256", bench.E19DurableWrite(64, 256))
	fmt.Printf("  => group commit recovers %.1fx over one-fsync-per-write; durability costs %.1fx vs memory\n",
		nsPerOp(b1)/nsPerOp(b256), nsPerOp(b256)/nsPerOp(mem))

	section("E20 server-side dispatch engine (0B echo; inline fast path + sharded pool)")
	bench.SetE20Dispatch(*dispatchWorkers, *dispatchInflight)
	spawn64 := run("64 callers, goroutine per call (pre-E20)", bench.E20Serve("spawn", 64, 0))
	run("64 callers, pool only (inline off)", bench.E20Serve("queued", 64, 0))
	eng64 := run("64 callers, engine (adaptive inline)", bench.E20Serve("engine", 64, 0))
	run("1 caller, goroutine per call (pre-E20)", bench.E20Serve("spawn", 1, 0))
	run("1 caller, engine (adaptive inline)", bench.E20Serve("engine", 1, 0))
	run("100µs blocking handler, 64 callers, 64 workers", bench.E20Blocking("engine", 64))
	run("offered load 4x the admission bound", bench.E20Overload(4))
	fmt.Printf("  => the dispatch engine serves 64-way traffic %.1fx faster than goroutine-per-call\n",
		nsPerOp(spawn64)/nsPerOp(eng64))

	section(fmt.Sprintf("E21 striped client call engine (0B echo; stripes=1 vs stripes=%d)", *stripes))
	s1 := run("64 callers, 1 stripe", bench.E21Striped(1, 64, 0))
	sN := s1
	if *stripes > 1 {
		sN = run(fmt.Sprintf("64 callers, %d stripes", *stripes), bench.E21Striped(*stripes, 64, 0))
		run(fmt.Sprintf("8 callers, %d stripes", *stripes), bench.E21Striped(*stripes, 8, 0))
	}
	run("small calls under bulk load, 1 stripe", bench.E21MixedHoL(1))
	if *stripes > 1 {
		run(fmt.Sprintf("small calls under bulk load, %d stripes", *stripes), bench.E21MixedHoL(*stripes))
	}
	fmt.Printf("  => striping the peer connection serves 64-way traffic %.1fx faster than one conn\n",
		nsPerOp(s1)/nsPerOp(sN))

	section("E22 always-on latency recording (v1 sampled-8 vs v2 always-on HDR histograms)")
	offR := run("record off, 1 caller", bench.E22RecordCost("off", 1))
	run("v1 sampled 1-in-8, 1 caller", bench.E22RecordCost("sampled8", 1))
	timed := run("clocks only (timed), 1 caller", bench.E22RecordCost("timed", 1))
	alw := run("v2 always-on, 1 caller", bench.E22RecordCost("always", 1))
	run("v2 always-on, 64 callers", bench.E22RecordCost("always", 64))
	fmt.Printf("  => the clock pair costs %.0f ns; the histogram record proper adds %.0f ns (budget 15)\n",
		nsPerOp(timed)-nsPerOp(offR), nsPerOp(alw)-nsPerOp(timed))

	if *stats {
		fmt.Println("\nper-subcontract metrics (scstats)")
		fmt.Print(scstats.Text())
	}

	fmt.Println("\ndone.")
}
