package main

import (
	"strings"
	"testing"
)

const exampleExposition = `# HELP subcontract_calls_total Invocations started through the subcontract.
# TYPE subcontract_calls_total counter
subcontract_calls_total{subcontract="netd"} 120
subcontract_calls_total{subcontract="singleton"} 40
# TYPE subcontract_errors_total counter
subcontract_errors_total{subcontract="netd"} 6
subcontract_errors_total{subcontract="singleton"} 0
# TYPE subcontract_cache_hits_total counter
subcontract_cache_hits_total{subcontract="caching"} 30
subcontract_cache_misses_total{subcontract="caching"} 10
# TYPE subcontract_latency_seconds histogram
subcontract_latency_seconds_bucket{subcontract="netd",le="1.024e-06"} 3
subcontract_latency_seconds_bucket{subcontract="netd",le="+Inf"} 15
subcontract_latency_seconds_sum{subcontract="netd"} 0.0045
subcontract_latency_seconds_count{subcontract="netd"} 15
# TYPE netd_conns_live gauge
netd_conns_live 2
# TYPE netd_breaker_opened gauge
netd_breaker_opened 0
`

func TestParseMetrics(t *testing.T) {
	sc, err := parseMetrics(strings.NewReader(exampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.counters["netd"]["subcontract_calls_total"]; got != 120 {
		t.Errorf("netd calls = %v, want 120", got)
	}
	if got := sc.counters["singleton"]["subcontract_errors_total"]; got != 0 {
		t.Errorf("singleton errors = %v, want 0", got)
	}
	if got := sc.counters["caching"]["subcontract_cache_hits_total"]; got != 30 {
		t.Errorf("caching hits = %v, want 30", got)
	}
	if got := sc.latencySum["netd"]; got != 0.0045 {
		t.Errorf("netd latency sum = %v, want 0.0045", got)
	}
	if got := sc.latencyCount["netd"]; got != 15 {
		t.Errorf("netd latency count = %v, want 15", got)
	}
	if got := sc.gauges["netd_conns_live"]; got != 2 {
		t.Errorf("conns_live gauge = %v, want 2", got)
	}
	if _, tracked := sc.counters["netd"]["subcontract_latency_seconds_bucket"]; tracked {
		t.Error("histogram buckets leaked into the counter map")
	}
}

func TestParseLineEscapedLabel(t *testing.T) {
	s, err := parseLine(`subcontract_calls_total{subcontract="netd(serve)"} 7`)
	if err != nil {
		t.Fatal(err)
	}
	if s.subcontract != "netd(serve)" || s.value != 7 {
		t.Errorf("got %+v", s)
	}
	s, err = parseLine(`m{a="x,y",subcontract="q\"z"} 1`)
	if err != nil {
		t.Fatal(err)
	}
	if s.subcontract != `q"z` {
		t.Errorf("escaped label = %q, want q\"z", s.subcontract)
	}
}

func TestRowsFromDeltas(t *testing.T) {
	prev, err := parseMetrics(strings.NewReader(exampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	curText := strings.NewReplacer(
		`subcontract_calls_total{subcontract="netd"} 120`, `subcontract_calls_total{subcontract="netd"} 170`,
		`subcontract_errors_total{subcontract="netd"} 6`, `subcontract_errors_total{subcontract="netd"} 8`,
	).Replace(exampleExposition)
	cur, err := parseMetrics(strings.NewReader(curText))
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsFrom(cur, prev)
	var netd *row
	for i := range rows {
		if rows[i].name == "netd" {
			netd = &rows[i]
		}
	}
	if netd == nil {
		t.Fatal("no netd row")
	}
	if netd.calls != 50 || netd.errs != 2 {
		t.Errorf("netd deltas = calls %v errs %v, want 50/2", netd.calls, netd.errs)
	}
	// Busiest-first ordering: netd (50) before singleton (0).
	if rows[0].name != "netd" {
		t.Errorf("rows[0] = %s, want netd", rows[0].name)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := parseMetrics(strings.NewReader("subcontract_calls_total{oops 1\n")); err == nil {
		t.Error("unterminated labels accepted")
	}
	if _, err := parseMetrics(strings.NewReader("name notanumber\n")); err == nil {
		t.Error("bad value accepted")
	}
}
