package main

import (
	"math"
	"strings"
	"testing"
)

const exampleExposition = `# HELP subcontract_calls_total Invocations started through the subcontract.
# TYPE subcontract_calls_total counter
subcontract_calls_total{subcontract="netd"} 120
subcontract_calls_total{subcontract="singleton"} 40
# TYPE subcontract_errors_total counter
subcontract_errors_total{subcontract="netd"} 6
subcontract_errors_total{subcontract="singleton"} 0
# TYPE subcontract_cache_hits_total counter
subcontract_cache_hits_total{subcontract="caching"} 30
subcontract_cache_misses_total{subcontract="caching"} 10
# TYPE subcontract_latency_seconds histogram
subcontract_latency_seconds_bucket{subcontract="netd",le="1.024e-06"} 3 # {trace_id="00000000deadbeef"} 9.5e-07
subcontract_latency_seconds_bucket{subcontract="netd",le="2.048e-06"} 12
subcontract_latency_seconds_bucket{subcontract="netd",le="+Inf"} 15
subcontract_latency_seconds_sum{subcontract="netd"} 0.0045
subcontract_latency_seconds_count{subcontract="netd"} 15
# TYPE netd_peer_calls_total counter
netd_peer_calls_total{peer="10.0.0.7:700"} 40
netd_peer_errors_total{peer="10.0.0.7:700"} 4
# TYPE netd_peer_latency_seconds histogram
netd_peer_latency_seconds_bucket{peer="10.0.0.7:700",le="1e-05"} 30 # {trace_id="00000000cafef00d"} 8e-06
netd_peer_latency_seconds_bucket{peer="10.0.0.7:700",le="+Inf"} 40
netd_peer_latency_seconds_sum{peer="10.0.0.7:700"} 0.001
netd_peer_latency_seconds_count{peer="10.0.0.7:700"} 40
# TYPE netd_conns_live gauge
netd_conns_live 2
# TYPE netd_breaker_opened_total counter
netd_breaker_opened_total 0
`

func TestParseMetrics(t *testing.T) {
	sc, err := parseMetrics(strings.NewReader(exampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.counters["netd"]["subcontract_calls_total"]; got != 120 {
		t.Errorf("netd calls = %v, want 120", got)
	}
	if got := sc.counters["singleton"]["subcontract_errors_total"]; got != 0 {
		t.Errorf("singleton errors = %v, want 0", got)
	}
	if got := sc.counters["caching"]["subcontract_cache_hits_total"]; got != 30 {
		t.Errorf("caching hits = %v, want 30", got)
	}
	if got := sc.latencySum["netd"]; got != 0.0045 {
		t.Errorf("netd latency sum = %v, want 0.0045", got)
	}
	if got := sc.latencyCount["netd"]; got != 15 {
		t.Errorf("netd latency count = %v, want 15", got)
	}
	if got := sc.gauges["netd_conns_live"]; got != 2 {
		t.Errorf("conns_live gauge = %v, want 2", got)
	}
	if _, tracked := sc.counters["netd"]["subcontract_latency_seconds_bucket"]; tracked {
		t.Error("histogram buckets leaked into the counter map")
	}
	// Buckets are collected in ascending-le order, exemplar suffix and
	// all.
	b := sc.latencyBuckets["netd"]
	if len(b) != 3 || b[0].count != 3 || b[1].count != 12 || !math.IsInf(b[2].le, 1) {
		t.Errorf("netd buckets = %+v, want 3 ascending with +Inf last", b)
	}
	// The peer RED block parses, exemplars stripped.
	p := sc.peers["10.0.0.7:700"]
	if p == nil || p.calls != 40 || p.errs != 4 || len(p.buckets) != 2 {
		t.Fatalf("peer scrape = %+v, want calls=40 errs=4 with 2 buckets", p)
	}
	if p.buckets[0].count != 30 {
		t.Errorf("peer bucket[0] = %+v, want count 30 (exemplar stripped)", p.buckets[0])
	}
}

func TestHistQuantile(t *testing.T) {
	b := []bucket{
		{le: 1e-6, count: 50},
		{le: 2e-6, count: 90},
		{le: 1e-3, count: 100},
		{le: math.Inf(1), count: 100},
	}
	if got := histQuantile(b, 0.50); got != 1e-6 {
		t.Errorf("p50 = %v, want 1e-6", got)
	}
	if got := histQuantile(b, 0.90); got != 2e-6 {
		t.Errorf("p90 = %v, want 2e-6", got)
	}
	if got := histQuantile(b, 0.99); got != 1e-3 {
		t.Errorf("p99 = %v, want 1e-3", got)
	}
	// Ranks landing in +Inf resolve to the last finite bound.
	over := []bucket{{le: 1e-6, count: 1}, {le: math.Inf(1), count: 10}}
	if got := histQuantile(over, 0.99); got != 1e-6 {
		t.Errorf("p99 in +Inf = %v, want clamp to 1e-6", got)
	}
	if got := histQuantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}

func TestSubBuckets(t *testing.T) {
	cur := []bucket{{le: 1e-6, count: 10}, {le: math.Inf(1), count: 20}}
	prev := []bucket{{le: 1e-6, count: 4}, {le: math.Inf(1), count: 5}}
	d := subBuckets(cur, prev)
	if d[0].count != 6 || d[1].count != 15 {
		t.Errorf("subBuckets = %+v, want 6/15", d)
	}
	if got := subBuckets(cur, nil); got[0].count != 10 {
		t.Errorf("nil prev should pass through, got %+v", got)
	}
}

func TestSlowURL(t *testing.T) {
	if got := slowURL("http://h:6060/metrics"); got != "http://h:6060/traces/slow" {
		t.Errorf("slowURL = %q", got)
	}
}

func TestParseLineEscapedLabel(t *testing.T) {
	s, err := parseLine(`subcontract_calls_total{subcontract="netd(serve)"} 7`)
	if err != nil {
		t.Fatal(err)
	}
	if s.subcontract != "netd(serve)" || s.value != 7 {
		t.Errorf("got %+v", s)
	}
	s, err = parseLine(`m{a="x,y",subcontract="q\"z"} 1`)
	if err != nil {
		t.Fatal(err)
	}
	if s.subcontract != `q"z` {
		t.Errorf("escaped label = %q, want q\"z", s.subcontract)
	}
}

func TestRowsFromDeltas(t *testing.T) {
	prev, err := parseMetrics(strings.NewReader(exampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	curText := strings.NewReplacer(
		`subcontract_calls_total{subcontract="netd"} 120`, `subcontract_calls_total{subcontract="netd"} 170`,
		`subcontract_errors_total{subcontract="netd"} 6`, `subcontract_errors_total{subcontract="netd"} 8`,
	).Replace(exampleExposition)
	cur, err := parseMetrics(strings.NewReader(curText))
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsFrom(cur, prev)
	var netd *row
	for i := range rows {
		if rows[i].name == "netd" {
			netd = &rows[i]
		}
	}
	if netd == nil {
		t.Fatal("no netd row")
	}
	if netd.calls != 50 || netd.errs != 2 {
		t.Errorf("netd deltas = calls %v errs %v, want 50/2", netd.calls, netd.errs)
	}
	// Busiest-first ordering: netd (50) before singleton (0).
	if rows[0].name != "netd" {
		t.Errorf("rows[0] = %s, want netd", rows[0].name)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := parseMetrics(strings.NewReader("subcontract_calls_total{oops 1\n")); err == nil {
		t.Error("unterminated labels accepted")
	}
	if _, err := parseMetrics(strings.NewReader("name notanumber\n")); err == nil {
		t.Error("bad value accepted")
	}
}
