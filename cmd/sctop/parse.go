package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed exposition line: a metric name, the labels we care
// about (subcontract, peer, le), and the value.
type sample struct {
	name        string
	subcontract string
	peer        string
	le          string
	value       float64
}

// bucket is one cumulative histogram bucket: count of observations ≤ le
// seconds (le = +Inf for the catch-all).
type bucket struct {
	le    float64
	count float64
}

// peerScrape is the per-peer RED block parsed from the netd_peer_*
// families.
type peerScrape struct {
	calls, errs      float64
	latSum, latCount float64
	buckets          []bucket
}

// scrape is one parsed /metrics payload.
type scrape struct {
	// counters[subcontract][family] for the subcontract_* families.
	counters map[string]map[string]float64
	// latencySum/latencyCount per subcontract (seconds / samples).
	latencySum   map[string]float64
	latencyCount map[string]float64
	// latencyBuckets per subcontract: cumulative, ascending le.
	latencyBuckets map[string][]bucket
	// peers by address, from the netd per-peer RED histograms.
	peers map[string]*peerScrape
	// gauges by (sanitized) metric name.
	gauges map[string]float64
}

// parseMetrics reads Prometheus text exposition. It understands the
// subset the telemetry plane emits: plain `name value` lines, labelled
// `name{a="b",...} value` lines, # comments, and the exemplar suffix
// (` # {trace_id="..."} ts`) the plane appends to bucket lines.
func parseMetrics(r io.Reader) (*scrape, error) {
	sc := &scrape{
		counters:       make(map[string]map[string]float64),
		latencySum:     make(map[string]float64),
		latencyCount:   make(map[string]float64),
		latencyBuckets: make(map[string][]bucket),
		peers:          make(map[string]*peerScrape),
		gauges:         make(map[string]float64),
	}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	for br.Scan() {
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		switch {
		case s.name == "subcontract_latency_seconds_sum":
			sc.latencySum[s.subcontract] = s.value
		case s.name == "subcontract_latency_seconds_count":
			sc.latencyCount[s.subcontract] = s.value
		case s.name == "subcontract_latency_seconds_bucket":
			sc.latencyBuckets[s.subcontract] = append(sc.latencyBuckets[s.subcontract],
				bucket{le: parseLe(s.le), count: s.value})
		case strings.HasPrefix(s.name, "netd_peer_"):
			p := sc.peers[s.peer]
			if p == nil {
				p = &peerScrape{}
				sc.peers[s.peer] = p
			}
			switch s.name {
			case "netd_peer_calls_total":
				p.calls = s.value
			case "netd_peer_errors_total":
				p.errs = s.value
			case "netd_peer_latency_seconds_sum":
				p.latSum = s.value
			case "netd_peer_latency_seconds_count":
				p.latCount = s.value
			case "netd_peer_latency_seconds_bucket":
				p.buckets = append(p.buckets, bucket{le: parseLe(s.le), count: s.value})
			}
		case strings.HasPrefix(s.name, "subcontract_"):
			m := sc.counters[s.subcontract]
			if m == nil {
				m = make(map[string]float64)
				sc.counters[s.subcontract] = m
			}
			m[s.name] = s.value
		default:
			sc.gauges[s.name] = s.value
		}
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	for _, b := range sc.latencyBuckets {
		sortBuckets(b)
	}
	for _, p := range sc.peers {
		sortBuckets(p.buckets)
	}
	return sc, nil
}

func sortBuckets(b []bucket) {
	sort.Slice(b, func(i, j int) bool { return b[i].le < b[j].le })
}

func parseLe(s string) float64 {
	if s == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.Inf(1)
	}
	return v
}

// subBuckets subtracts a previous scrape's cumulative buckets from the
// current ones (matching on le), yielding the window's cumulative
// histogram. A nil prev returns cur unchanged.
func subBuckets(cur, prev []bucket) []bucket {
	if len(prev) == 0 {
		return cur
	}
	pc := make(map[float64]float64, len(prev))
	for _, b := range prev {
		pc[b.le] = b.count
	}
	out := make([]bucket, 0, len(cur))
	for _, b := range cur {
		d := b.count - pc[b.le]
		if d < 0 {
			d = 0
		}
		out = append(out, bucket{le: b.le, count: d})
	}
	return out
}

// histQuantile returns the q quantile, in seconds, of a cumulative
// bucket list (ascending le). It reports the upper bound of the bucket
// the rank falls in — the same ≤6.25%-wide resolution the histogram
// stores. The +Inf bucket resolves to the last finite bound. NaN when
// the histogram is empty.
func histQuantile(buckets []bucket, q float64) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	lastFinite := 0.0
	for _, b := range buckets {
		if !math.IsInf(b.le, 1) {
			lastFinite = b.le
		}
		if b.count >= rank {
			if math.IsInf(b.le, 1) {
				return lastFinite
			}
			return b.le
		}
	}
	return lastFinite
}

// parseLine splits one sample line, ignoring any exemplar suffix.
func parseLine(line string) (sample, error) {
	var s sample
	// The plane appends OpenMetrics-style exemplars to bucket lines:
	// `... 15 # {trace_id="..."} 1.2e-05`. Everything from " # " on is
	// exemplar, not value.
	if i := strings.Index(line, " # "); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("sctop: malformed line %q", line)
	}
	s.name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("sctop: unterminated labels in %q", line)
		}
		labels := rest[1:close]
		rest = rest[close+1:]
		for _, kv := range splitLabels(labels) {
			eq := strings.Index(kv, "=")
			if eq < 0 {
				continue
			}
			key := kv[:eq]
			val, err := strconv.Unquote(kv[eq+1:])
			if err != nil {
				return s, fmt.Errorf("sctop: bad label value in %q: %v", line, err)
			}
			switch key {
			case "subcontract":
				s.subcontract = val
			case "peer":
				s.peer = val
			case "le":
				s.le = val
			}
		}
	}
	valStr := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("sctop: bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
