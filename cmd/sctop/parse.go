package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// sample is one parsed exposition line: a metric name, its label set (we
// only care about the subcontract label), and the value.
type sample struct {
	name        string
	subcontract string
	le          string
	value       float64
}

// scrape is one parsed /metrics payload.
type scrape struct {
	// counters[subcontract][family] for the subcontract_* families.
	counters map[string]map[string]float64
	// latencySum/latencyCount per subcontract (seconds / samples).
	latencySum   map[string]float64
	latencyCount map[string]float64
	// gauges by (sanitized) metric name.
	gauges map[string]float64
}

// parseMetrics reads Prometheus text exposition. It understands the
// subset the telemetry plane emits: plain `name value` lines, labelled
// `name{a="b",...} value` lines, and # comments.
func parseMetrics(r io.Reader) (*scrape, error) {
	sc := &scrape{
		counters:     make(map[string]map[string]float64),
		latencySum:   make(map[string]float64),
		latencyCount: make(map[string]float64),
		gauges:       make(map[string]float64),
	}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	for br.Scan() {
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		switch {
		case s.name == "subcontract_latency_seconds_sum":
			sc.latencySum[s.subcontract] = s.value
		case s.name == "subcontract_latency_seconds_count":
			sc.latencyCount[s.subcontract] = s.value
		case s.name == "subcontract_latency_seconds_bucket":
			// buckets are not used by the table; skip
		case strings.HasPrefix(s.name, "subcontract_"):
			m := sc.counters[s.subcontract]
			if m == nil {
				m = make(map[string]float64)
				sc.counters[s.subcontract] = m
			}
			m[s.name] = s.value
		default:
			sc.gauges[s.name] = s.value
		}
	}
	return sc, br.Err()
}

// parseLine splits one sample line.
func parseLine(line string) (sample, error) {
	var s sample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("sctop: malformed line %q", line)
	}
	s.name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("sctop: unterminated labels in %q", line)
		}
		labels := rest[1:close]
		rest = rest[close+1:]
		for _, kv := range splitLabels(labels) {
			eq := strings.Index(kv, "=")
			if eq < 0 {
				continue
			}
			key := kv[:eq]
			val, err := strconv.Unquote(kv[eq+1:])
			if err != nil {
				return s, fmt.Errorf("sctop: bad label value in %q: %v", line, err)
			}
			switch key {
			case "subcontract":
				s.subcontract = val
			case "le":
				s.le = val
			}
		}
	}
	valStr := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("sctop: bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
