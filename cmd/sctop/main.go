// sctop is "top" for subcontracts: it polls a daemon's telemetry plane
// (/metrics, see internal/telemetry) and renders a live per-subcontract
// table of call rates, error rates, retries, cache hit ratio, and mean /
// p50 / p99 latency computed from deltas between consecutive scrapes,
// plus a PEERS stanza from the netd per-peer RED histograms.
//
//	sctop -url http://localhost:6060/metrics
//	sctop -url http://localhost:6060/metrics -interval 1s
//	sctop -once          # single scrape, absolute totals, no screen clear
//	sctop -slow          # tail the slow-span ring (/traces/slow) instead
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:6060/metrics", "telemetry /metrics URL to poll")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "scrape once, print absolute totals, exit")
	slow := flag.Bool("slow", false, "tail the slow-span ring (/traces/slow) instead of the metrics table")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}

	if *slow {
		tailSlow(client, slowURL(*url), *interval, *once)
		return
	}

	if *once {
		cur, err := fetch(client, *url)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		render(os.Stdout, cur, nil, 0, false)
		return
	}

	var prev *scrape
	var prevAt time.Time
	for {
		cur, err := fetch(client, *url)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sctop: %v (retrying in %v)\n", err, *interval)
		} else {
			clearScreen()
			fmt.Printf("sctop  %s  %s  interval=%v\n\n", *url, now.Format("15:04:05"), *interval)
			render(os.Stdout, cur, prev, now.Sub(prevAt), true)
			prev, prevAt = cur, now
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (*scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("sctop: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sctop: GET %s: status %s", url, resp.Status)
	}
	return parseMetrics(resp.Body)
}

func clearScreen() { fmt.Print("\x1b[2J\x1b[H") }

// ---------------------------------------------------------------------
// -slow: tail the slow-span ring.

// slowURL derives the /traces/slow endpoint from the -url flag (which
// points at /metrics on the same plane).
func slowURL(metricsURL string) string {
	return strings.TrimSuffix(metricsURL, "/metrics") + "/traces/slow"
}

// slowRoot is the listing shape handleSlowTraces serves.
type slowRoot struct {
	Trace    string `json:"trace"`
	Span     string `json:"span"`
	Name     string `json:"name"`
	Err      string `json:"err"`
	Start    string `json:"start"`
	Duration string `json:"duration"`
}

// tailSlow polls /traces/slow and prints each slow root once, newest
// last — `tail -f` for the calls that blew their latency budget.
func tailSlow(client *http.Client, url string, interval time.Duration, once bool) {
	seen := make(map[string]bool)
	for {
		roots, err := fetchSlow(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sctop: %v (retrying in %v)\n", err, interval)
		} else {
			// The listing is newest-first; print oldest-first so the tail
			// reads chronologically.
			for i := len(roots) - 1; i >= 0; i-- {
				r := roots[i]
				key := r.Trace + "/" + r.Span
				if seen[key] {
					continue
				}
				seen[key] = true
				status := ""
				if r.Err != "" {
					status = "  ERR " + r.Err
				}
				fmt.Printf("%s  %-28s %10s  trace=%s%s\n", r.Start, r.Name, r.Duration, r.Trace, status)
			}
		}
		if once {
			return
		}
		time.Sleep(interval)
	}
}

func fetchSlow(client *http.Client, url string) ([]slowRoot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("sctop: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sctop: GET %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var roots []slowRoot
	if err := json.Unmarshal(body, &roots); err != nil {
		return nil, fmt.Errorf("sctop: %s not JSON: %v", url, err)
	}
	return roots, nil
}

// ---------------------------------------------------------------------
// The metrics table.

// row is one rendered table line.
type row struct {
	name                 string
	calls, errs, retries float64
	hits, misses         float64
	latSum, latCount     float64
	buckets              []bucket // window-cumulative latency buckets
}

// rowsFrom computes per-subcontract values. With a previous scrape the
// values are deltas (rates over the elapsed window); without one they are
// absolute totals.
func rowsFrom(cur, prev *scrape) []row {
	var rows []row
	for name, c := range cur.counters {
		r := row{
			name:     name,
			calls:    c["subcontract_calls_total"],
			errs:     c["subcontract_errors_total"],
			retries:  c["subcontract_retries_total"] + c["subcontract_failovers_total"] + c["subcontract_reconnects_total"],
			hits:     c["subcontract_cache_hits_total"],
			misses:   c["subcontract_cache_misses_total"],
			latSum:   cur.latencySum[name],
			latCount: cur.latencyCount[name],
			buckets:  cur.latencyBuckets[name],
		}
		if prev != nil {
			if p, ok := prev.counters[name]; ok {
				r.calls -= p["subcontract_calls_total"]
				r.errs -= p["subcontract_errors_total"]
				r.retries -= p["subcontract_retries_total"] + p["subcontract_failovers_total"] + p["subcontract_reconnects_total"]
				r.hits -= p["subcontract_cache_hits_total"]
				r.misses -= p["subcontract_cache_misses_total"]
				r.latSum -= prev.latencySum[name]
				r.latCount -= prev.latencyCount[name]
				r.buckets = subBuckets(r.buckets, prev.latencyBuckets[name])
			}
		}
		rows = append(rows, r)
	}
	// Busiest first, then by name for a stable layout.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].calls != rows[j].calls {
			return rows[i].calls > rows[j].calls
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// fmtQuantile renders a histogram quantile as a duration ("-" when the
// window saw no samples).
func fmtQuantile(buckets []bucket, q float64) string {
	v := histQuantile(buckets, q)
	if math.IsNaN(v) {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(10 * time.Nanosecond).String()
}

// render writes the table. asRates scales counter deltas by the elapsed
// window into per-second figures; otherwise raw totals are printed.
func render(w *os.File, cur, prev *scrape, elapsed time.Duration, asRates bool) {
	rows := rowsFrom(cur, prev)
	secs := elapsed.Seconds()
	rates := asRates && prev != nil && secs > 0

	unit := ""
	if rates {
		unit = "/s"
	}
	fmt.Fprintf(w, "%-24s %12s %10s %10s %8s %8s %10s %10s %10s\n",
		"SUBCONTRACT", "CALLS"+unit, "ERRS"+unit, "RETRY"+unit, "ERR%", "HIT%", "MEAN LAT", "P50", "P99")
	for _, r := range rows {
		calls, errs, retries := r.calls, r.errs, r.retries
		if rates {
			calls /= secs
			errs /= secs
			retries /= secs
		}
		errPct := "-"
		if r.calls > 0 {
			errPct = fmt.Sprintf("%.1f", 100*r.errs/r.calls)
		}
		hitPct := "-"
		if lookups := r.hits + r.misses; lookups > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*r.hits/lookups)
		}
		meanLat := "-"
		if r.latCount > 0 {
			meanLat = time.Duration(r.latSum / r.latCount * float64(time.Second)).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-24s %12.1f %10.1f %10.1f %8s %8s %10s %10s %10s\n",
			r.name, calls, errs, retries, errPct, hitPct, meanLat,
			fmtQuantile(r.buckets, 0.50), fmtQuantile(r.buckets, 0.99))
	}

	// PEERS: the netd per-peer RED histograms, windowed like the table.
	if len(cur.peers) > 0 {
		addrs := make([]string, 0, len(cur.peers))
		for a := range cur.peers {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		fmt.Fprintf(w, "\n%-24s %12s %10s %8s %10s %10s\n",
			"PEER", "CALLS"+unit, "ERRS"+unit, "ERR%", "P50", "P99")
		for _, a := range addrs {
			p := cur.peers[a]
			calls, errs, buckets := p.calls, p.errs, p.buckets
			if prev != nil {
				if pp, ok := prev.peers[a]; ok {
					calls -= pp.calls
					errs -= pp.errs
					buckets = subBuckets(buckets, pp.buckets)
				}
			}
			errPct := "-"
			if calls > 0 {
				errPct = fmt.Sprintf("%.1f", 100*errs/calls)
			}
			if rates {
				calls /= secs
				errs /= secs
			}
			fmt.Fprintf(w, "%-24s %12.1f %10.1f %8s %10s %10s\n",
				a, calls, errs, errPct, fmtQuantile(buckets, 0.50), fmtQuantile(buckets, 0.99))
		}
	}

	// One-line netd link summary: sockets vs stripes vs peer sessions.
	// With a striped client (E21) conns > sessions is the normal shape —
	// stripes_live counts the per-peer sockets, sessions_live the peers.
	if stripes, ok := cur.gauges["netd_stripes_live"]; ok {
		fmt.Fprintf(w, "\nnetd link: CONNS %g  STRIPES %g  SESSIONS %g  SENDQ %g\n",
			cur.gauges["netd_conns_live"], stripes,
			cur.gauges["netd_sessions_live"], cur.gauges["netd_sendq_depth"])
	}

	// A footer of the liveness gauges, when present in the scrape.
	if len(cur.gauges) > 0 {
		fmt.Fprintln(w)
		names := make([]string, 0, len(cur.gauges))
		for n := range cur.gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for i, n := range names {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%s=%g", n, cur.gauges[n])
		}
		fmt.Fprintln(w)
	}
}
