// sctop is "top" for subcontracts: it polls a daemon's telemetry plane
// (/metrics, see internal/telemetry) and renders a live per-subcontract
// table of call rates, error rates, retries, cache hit ratio, and mean
// latency, computed from deltas between consecutive scrapes.
//
//	sctop -url http://localhost:6060/metrics
//	sctop -url http://localhost:6060/metrics -interval 1s
//	sctop -once          # single scrape, absolute totals, no screen clear
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:6060/metrics", "telemetry /metrics URL to poll")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "scrape once, print absolute totals, exit")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		cur, err := fetch(client, *url)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		render(os.Stdout, cur, nil, 0, false)
		return
	}

	var prev *scrape
	var prevAt time.Time
	for {
		cur, err := fetch(client, *url)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sctop: %v (retrying in %v)\n", err, *interval)
		} else {
			clearScreen()
			fmt.Printf("sctop  %s  %s  interval=%v\n\n", *url, now.Format("15:04:05"), *interval)
			render(os.Stdout, cur, prev, now.Sub(prevAt), true)
			prev, prevAt = cur, now
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (*scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("sctop: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sctop: GET %s: status %s", url, resp.Status)
	}
	return parseMetrics(resp.Body)
}

func clearScreen() { fmt.Print("\x1b[2J\x1b[H") }

// row is one rendered table line.
type row struct {
	name                 string
	calls, errs, retries float64
	hits, misses         float64
	latSum, latCount     float64
}

// rowsFrom computes per-subcontract values. With a previous scrape the
// values are deltas (rates over the elapsed window); without one they are
// absolute totals.
func rowsFrom(cur, prev *scrape) []row {
	var rows []row
	for name, c := range cur.counters {
		r := row{
			name:     name,
			calls:    c["subcontract_calls_total"],
			errs:     c["subcontract_errors_total"],
			retries:  c["subcontract_retries_total"] + c["subcontract_failovers_total"] + c["subcontract_reconnects_total"],
			hits:     c["subcontract_cache_hits_total"],
			misses:   c["subcontract_cache_misses_total"],
			latSum:   cur.latencySum[name],
			latCount: cur.latencyCount[name],
		}
		if prev != nil {
			if p, ok := prev.counters[name]; ok {
				r.calls -= p["subcontract_calls_total"]
				r.errs -= p["subcontract_errors_total"]
				r.retries -= p["subcontract_retries_total"] + p["subcontract_failovers_total"] + p["subcontract_reconnects_total"]
				r.hits -= p["subcontract_cache_hits_total"]
				r.misses -= p["subcontract_cache_misses_total"]
				r.latSum -= prev.latencySum[name]
				r.latCount -= prev.latencyCount[name]
			}
		}
		rows = append(rows, r)
	}
	// Busiest first, then by name for a stable layout.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].calls != rows[j].calls {
			return rows[i].calls > rows[j].calls
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// render writes the table. asRates scales counter deltas by the elapsed
// window into per-second figures; otherwise raw totals are printed.
func render(w *os.File, cur, prev *scrape, elapsed time.Duration, asRates bool) {
	rows := rowsFrom(cur, prev)
	secs := elapsed.Seconds()
	rates := asRates && prev != nil && secs > 0

	unit := ""
	if rates {
		unit = "/s"
	}
	fmt.Fprintf(w, "%-24s %12s %10s %10s %8s %8s %10s\n",
		"SUBCONTRACT", "CALLS"+unit, "ERRS"+unit, "RETRY"+unit, "ERR%", "HIT%", "MEAN LAT")
	for _, r := range rows {
		calls, errs, retries := r.calls, r.errs, r.retries
		if rates {
			calls /= secs
			errs /= secs
			retries /= secs
		}
		errPct := "-"
		if r.calls > 0 {
			errPct = fmt.Sprintf("%.1f", 100*r.errs/r.calls)
		}
		hitPct := "-"
		if lookups := r.hits + r.misses; lookups > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*r.hits/lookups)
		}
		meanLat := "-"
		if r.latCount > 0 {
			meanLat = time.Duration(r.latSum / r.latCount * float64(time.Second)).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-24s %12.1f %10.1f %10.1f %8s %8s %10s\n",
			r.name, calls, errs, retries, errPct, hitPct, meanLat)
	}

	// One-line netd link summary: sockets vs stripes vs peer sessions.
	// With a striped client (E21) conns > sessions is the normal shape —
	// stripes_live counts the per-peer sockets, sessions_live the peers.
	if stripes, ok := cur.gauges["netd_stripes_live"]; ok {
		fmt.Fprintf(w, "\nnetd link: CONNS %g  STRIPES %g  SESSIONS %g  SENDQ %g\n",
			cur.gauges["netd_conns_live"], stripes,
			cur.gauges["netd_sessions_live"], cur.gauges["netd_sendq_depth"])
	}

	// A footer of the liveness gauges, when present in the scrape.
	if len(cur.gauges) > 0 {
		fmt.Fprintln(w)
		names := make([]string, 0, len(cur.gauges))
		for n := range cur.gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for i, n := range names {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%s=%g", n, cur.gauges[n])
		}
		fmt.Fprintln(w)
	}
}
