// Command fsh is a small client shell for a springfsd server.
//
//	fsh -server 127.0.0.1:7040 ls
//	fsh -server 127.0.0.1:7040 create notes
//	fsh -server 127.0.0.1:7040 write notes "hello there"
//	fsh -server 127.0.0.1:7040 cat notes
//	fsh -server 127.0.0.1:7040 stat notes
//	fsh -server 127.0.0.1:7040 rm notes
//
// fsh is itself a full Spring "machine": it runs its own network door
// server, naming context, and cache manager, so cacheable files served by
// a -flavor caching springfsd are transparently cached on the fsh side.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var (
	server  = flag.String("server", "127.0.0.1:7040", "springfsd address")
	timeout = flag.Duration("timeout", 0, "per-call deadline (0 = none); expired calls fail with core.ErrDeadlineExceeded")

	callTimeout = flag.Duration("call-timeout", 10*time.Second, "reply wait per forwarded call")
	dialTimeout = flag.Duration("dial-timeout", 3*time.Second, "per connection attempt")
	hbInterval  = flag.Duration("heartbeat", time.Second, "heartbeat interval on idle peer connections")
	leaseGrace  = flag.Duration("lease-grace", 10*time.Second,
		"how long a peer may be silent or disconnected before its references are reclaimed")
	stripesFlag = flag.Int("stripes", 0,
		"client connections dialled per peer (0 = scale to GOMAXPROCS, capped at 8)")
	sameMachine = flag.Bool("same-machine", false,
		"enable the same-machine transport tier (unix:<path> addresses, mapped-region bulk replies)")

	cacheBudget = flag.Int64("cache-budget", 0,
		"per-entry reply-cache byte budget for the cache manager (0 = default, negative = unbounded)")

	reconnectAttempts = flag.Int("reconnect-attempts", 0,
		"ride out server restarts: retry reconnectable calls up to this many times (0 = subcontract default)")
	reconnectBackoff = flag.Duration("reconnect-backoff", 0,
		"pause between reconnect attempts (0 = subcontract default)")

	telemetryAddr = flag.String("telemetry", "",
		"serve /metrics, /traces, /healthz and pprof on this address (e.g. :6061; empty = off)")
	traceSample = flag.Int("trace-sample", 0,
		"record a trace for 1 in N calls that arrive untraced (0 = only explicitly traced calls)")
	traceSlow = flag.Duration("trace-slow", 0,
		"tail-capture calls slower than this into /traces/slow, even when head sampling skips them (0 = off)")
)

func usage() {
	fmt.Println("usage: fsh [-server addr] [-timeout d] <ls | create F | cat F | write F TEXT | stat F | rm F>")
}

func main() {
	flag.Parse()
	log.SetPrefix("fsh: ")
	log.SetFlags(0)
	args := flag.Args()
	if len(args) == 0 {
		usage()
		return
	}

	trace.SetSampling(*traceSample)
	trace.SetSlowDefault(*traceSlow)
	if *telemetryAddr != "" {
		tp, err := telemetry.Start(*telemetryAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer tp.Close()
	}

	// Local machine setup: kernel, network door server, naming, cache.
	k := kernel.New("fsh")
	cfg := netd.Config{
		CallTimeout:       *callTimeout,
		DialTimeout:       *dialTimeout,
		HeartbeatInterval: *hbInterval,
		LeaseGrace:        *leaseGrace,
		Stripes:           *stripesFlag,
	}
	if *sameMachine {
		cfg.Transport = netd.SameMachine()
	}
	net, err := netd.Start(k.NewDomain("netd"), "127.0.0.1:0", netd.With(cfg))
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	newEnv := func(name string) *core.Env {
		e := core.NewEnv(k.NewDomain(name))
		if err := filesys.RegisterAll(e.Registry); err != nil {
			log.Fatal(err)
		}
		return e
	}
	ns := naming.NewServer(newEnv("naming"))
	mgr := cache.NewManagerWith(newEnv("cachemgr"), cache.Config{ReplyBudget: *cacheBudget})
	mgrObj, err := mgr.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	h, err := ns.Handle()
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Bind("cachemgr", mgrObj, false); err != nil {
		log.Fatal(err)
	}

	cli := newEnv("shell")
	ctxCopy, err := ns.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	// The context lives in this process; hand the shell domain its own
	// identifier for it.
	buf := newBufWith(ctxCopy)
	ctxObj, err := core.Unmarshal(cli, naming.ContextMT, buf)
	if err != nil {
		log.Fatal(err)
	}
	cli.Set(caching.LocalContextVar, ctxObj)

	// Reconnectable files re-resolve themselves through the server's
	// naming context after a restart; import it and set the retry policy
	// so a durable (-wal) springfsd can be killed under a running fsh.
	srvCtx, err := net.ImportRootObject(cli, *server, "naming", naming.ContextMT)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *server, err)
	}
	cli.Set(reconnectable.ContextVar, srvCtx)
	if *reconnectAttempts != 0 || *reconnectBackoff != 0 {
		pol := reconnectable.DefaultPolicy
		if *reconnectAttempts != 0 {
			pol.MaxAttempts = *reconnectAttempts
		}
		if *reconnectBackoff != 0 {
			pol.Backoff = *reconnectBackoff
		}
		cli.Set(reconnectable.PolicyVar, &pol)
	}

	fsObj, err := net.ImportRootObject(cli, *server, "fs", filesys.FileSystemMT)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *server, err)
	}
	fs := filesys.FileSystem{Obj: fsObj}
	if *timeout != 0 {
		fs = fs.With(core.WithTimeout(*timeout))
	}

	open := func(name string) filesys.File {
		f, err := fs.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		if *timeout != 0 {
			f = f.With(core.WithTimeout(*timeout))
		}
		return f
	}

	switch args[0] {
	case "ls":
		names, err := fs.List()
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "create":
		need(args, 2)
		if _, err := fs.Create(args[1]); err != nil {
			log.Fatal(err)
		}
	case "cat":
		need(args, 2)
		f := open(args[1])
		sz, err := f.Size()
		if err != nil {
			log.Fatal(err)
		}
		data, err := f.Read(0, int32(sz))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(string(data))
		if !strings.HasSuffix(string(data), "\n") {
			fmt.Println()
		}
	case "write":
		need(args, 3)
		f := open(args[1])
		text := strings.Join(args[2:], " ")
		if _, err := f.Write(0, []byte(text)); err != nil {
			log.Fatal(err)
		}
	case "stat":
		need(args, 2)
		f := open(args[1])
		info, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		kind := "file"
		if _, ok := filesys.NarrowCacheableFile(f.Obj); ok {
			kind = "cacheable_file"
		}
		fmt.Printf("%s: %d bytes, version %d, type %s, subcontract %s\n",
			info.Name, info.Size, info.Version, kind, f.Obj.SC.Name())
	case "rm":
		need(args, 2)
		if err := fs.Remove(args[1]); err != nil {
			log.Fatal(err)
		}
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
		log.Fatalf("%s: missing argument", args[0])
	}
}

// newBufWith marshals obj into a fresh buffer (a local-machine transfer).
func newBufWith(obj *core.Object) *buffer.Buffer {
	b := buffer.New(64)
	if err := obj.Marshal(b); err != nil {
		log.Fatal(err)
	}
	return b
}
