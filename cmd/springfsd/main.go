// Command springfsd serves a Spring file system over the network door
// servers: the daemon half of the cmd/fsh pair.
//
//	springfsd -addr 127.0.0.1:7040 -flavor caching
//	springfsd -addr 127.0.0.1:7040 -flavor reconnectable -wal /var/lib/springfsd
//
// The daemon publishes two bootstrap roots: "fs" (the file_system object)
// and "naming" (the machine's naming context). With -flavor caching, file
// objects use the caching subcontract and remote clients transparently
// read through their own machine-local cache managers.
//
// With -wal DIR the daemon is durable (E19): every mutation is
// group-committed to a write-ahead log in DIR before it is acknowledged,
// snapshots compact the log, and the network server persists its
// session/lease table to DIR/netd.state — so a killed daemon restarted
// against the same directory rejoins under its old instance identity and
// clients riding the reconnectable subcontract recover transparently.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/scstats"
	"repro/internal/subcontracts/caching"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7040", "listen address")
	flavor   = flag.String("flavor", "plain", "file subcontract flavor: plain | caching | reconnectable")
	snapshot = flag.String("snapshot", "", "stable-storage file: loaded at start, saved on shutdown")
	walDir   = flag.String("wal", "",
		"durability directory: write-ahead log + snapshot + netd state; mutations are fsynced before acknowledgment and a restart recovers transparently")
	walLinger = flag.Duration("wal-linger", 0,
		"group-commit linger window: how long the committer waits for concurrent mutations to join a batch (0 = default 200µs, negative = no linger)")
	walBatch = flag.Int("wal-batch", 0, "max records fsynced per group-commit batch (0 = default 256)")
	dumpSC   = flag.Bool("scstats", false, "dump per-subcontract metrics on shutdown and on SIGUSR1")

	callTimeout = flag.Duration("call-timeout", 10*time.Second, "reply wait per forwarded call")
	dialTimeout = flag.Duration("dial-timeout", 3*time.Second, "per connection attempt")
	hbInterval  = flag.Duration("heartbeat", time.Second, "heartbeat interval on idle peer connections")
	leaseGrace  = flag.Duration("lease-grace", 10*time.Second,
		"how long a peer may be silent or disconnected before its references are reclaimed")
	sameMachine = flag.Bool("same-machine", false,
		"enable the same-machine transport tier: listen on unix:<path> addresses and hand large replies over as mapped regions to co-resident peers")
	stripesFlag = flag.Int("stripes", 0,
		"client connections dialled per peer (0 = scale to GOMAXPROCS, capped at 8); the last stripe carries bulk frames")
	bulkThreshold = flag.Int("bulk-threshold", 0,
		"payload size (bytes) above which a same-machine call rides a mapped region instead of the frame (0 = default)")
	dispatchWorkers = flag.Int("dispatch-workers", 0,
		"serve-side dispatch pool workers (0 = GOMAXPROCS, capped at 64)")
	dispatchInflight = flag.Int("dispatch-inflight", 0,
		"in-flight admission bound for incoming calls; past it callers get a retryable overload reply (0 = default 1024, negative = unbounded)")

	cacheBudget = flag.Int64("cache-budget", 0,
		"per-entry reply-cache byte budget for the cache manager (0 = default, negative = unbounded)")

	telemetryAddr = flag.String("telemetry", "",
		"serve /metrics, /traces, /healthz and pprof on this address (e.g. :6060; empty = off)")
	traceSample = flag.Int("trace-sample", 0,
		"record a trace for 1 in N calls that arrive untraced (0 = only explicitly traced calls)")
	traceSlow = flag.Duration("trace-slow", 0,
		"tail-capture calls slower than this into /traces/slow, even when head sampling skips them (0 = off)")
)

func main() {
	flag.Parse()
	log.SetPrefix("springfsd: ")
	log.SetFlags(0)
	if *walDir != "" && *snapshot != "" {
		log.Fatal("-wal and -snapshot are mutually exclusive (the WAL directory keeps its own snapshot)")
	}

	trace.SetSampling(*traceSample)
	trace.SetSlowDefault(*traceSlow)
	if *telemetryAddr != "" {
		tp, err := telemetry.Start(*telemetryAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer tp.Close()
		fmt.Printf("springfsd: telemetry on http://%s (/metrics /traces /healthz /debug/pprof)\n", tp.Addr())
	}

	k := kernel.New("springfsd")
	newEnv := func(name string) *core.Env {
		e := core.NewEnv(k.NewDomain(name))
		if err := filesys.RegisterAll(e.Registry); err != nil {
			log.Fatal(err)
		}
		return e
	}

	// Machine-local services: naming context and cache manager.
	ns := naming.NewServer(newEnv("naming"))
	mgr := cache.NewManagerWith(newEnv("cachemgr"), cache.Config{ReplyBudget: *cacheBudget})
	mgrObj, err := mgr.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	h, err := ns.Handle()
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Bind("cachemgr", mgrObj, false); err != nil {
		log.Fatal(err)
	}

	// The store, recovered from the WAL directory when one is given.
	store := filesys.NewStore()
	var wal *filesys.WAL
	if *walDir != "" {
		wal, err = filesys.OpenWAL(*walDir, store, filesys.WALOptions{
			Linger: *walLinger, MaxBatch: *walBatch,
		})
		if err != nil {
			log.Fatalf("opening wal: %v", err)
		}
	}

	srvEnv := newEnv("fileserver")
	var svc *filesys.Service
	switch *flavor {
	case "plain":
		svc = filesys.NewServiceWithStore(srvEnv, store)
	case "caching":
		svc = filesys.NewCachingServiceWithStore(srvEnv, store, "cachemgr")
	case "reconnectable":
		ctxCp, err := ns.Object().Copy()
		if err != nil {
			log.Fatal(err)
		}
		buf := buffer.New(64)
		if err := ctxCp.Marshal(buf); err != nil {
			log.Fatal(err)
		}
		srvCtx, err := core.Unmarshal(srvEnv, naming.ContextMT, buf)
		if err != nil {
			log.Fatal(err)
		}
		rs := filesys.NewReconnectableServiceWithStore(srvEnv, naming.Context{Obj: srvCtx}, store)
		if err := rs.Restart(); err != nil {
			log.Fatalf("rebinding recovered files: %v", err)
		}
		svc = rs.Service
	default:
		log.Fatalf("unknown flavor %q (want plain, caching or reconnectable)", *flavor)
	}

	if *snapshot != "" {
		if err := store.LoadFile(*snapshot); err != nil {
			log.Fatalf("loading snapshot: %v", err)
		}
	}

	// Services exist before the network server starts: a durable netd
	// rebinds its persisted export labels against these roots inside
	// Start, before it accepts the first reconnecting peer.
	roots := map[string]*core.Object{"fs": svc.Object(), "naming": ns.Object()}
	cfg := netd.Config{
		CallTimeout:       *callTimeout,
		DialTimeout:       *dialTimeout,
		HeartbeatInterval: *hbInterval,
		LeaseGrace:        *leaseGrace,
		Stripes:           *stripesFlag,
		BulkThreshold:     *bulkThreshold,
		Dispatch: netd.DispatchConfig{
			Workers:     *dispatchWorkers,
			MaxInflight: *dispatchInflight,
		},
	}
	if *sameMachine {
		cfg.Transport = netd.SameMachine()
	}
	opts := []netd.Option{netd.With(cfg)}
	if *walDir != "" {
		opts = append(opts,
			netd.WithStateFile(filepath.Join(*walDir, "netd.state")),
			netd.WithRebinder(netd.RootRebinder(roots)))
	}
	net, err := netd.Start(k.NewDomain("netd"), *addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for name, obj := range roots {
		net.PublishRoot(name, obj)
	}
	fmt.Printf("springfsd: serving %s file system on %s (roots: fs, naming)\n", *flavor, net.Addr())
	_ = caching.SCID // document the dependency; the flavor selects it at Export time

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if *dumpSC {
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				fmt.Print(scstats.Text())
			}
		}()
	}
	<-sig
	fmt.Println("\nspringfsd: shutting down")
	if *dumpSC {
		fmt.Print(scstats.Text())
	}
	// Shutdown failures are reported, not fatal mid-sequence: a snapshot
	// that cannot be written leaves the previous one in place (SaveFile
	// is atomic) and the daemon still closes the log and the network
	// server cleanly — it just exits nonzero so supervisors notice.
	exitCode := 0
	if *snapshot != "" {
		if err := svc.Store().SaveFile(*snapshot); err != nil {
			log.Printf("saving snapshot to %s failed (previous snapshot kept): %v", *snapshot, err)
			exitCode = 1
		}
	}
	if wal != nil {
		if err := wal.Close(); err != nil {
			log.Printf("closing wal: %v", err)
			exitCode = 1
		}
	}
	if err := net.Close(); err != nil {
		log.Printf("closing network server: %v", err)
		exitCode = 1
	}
	os.Exit(exitCode)
}
