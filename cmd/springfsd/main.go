// Command springfsd serves a Spring file system over the network door
// servers: the daemon half of the cmd/fsh pair.
//
//	springfsd -addr 127.0.0.1:7040 -flavor caching
//
// The daemon publishes two bootstrap roots: "fs" (the file_system object)
// and "naming" (the machine's naming context). With -flavor caching, file
// objects use the caching subcontract and remote clients transparently
// read through their own machine-local cache managers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/scstats"
	"repro/internal/subcontracts/caching"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7040", "listen address")
	flavor   = flag.String("flavor", "plain", "file subcontract flavor: plain | caching")
	snapshot = flag.String("snapshot", "", "stable-storage file: loaded at start, saved on shutdown")
	dumpSC   = flag.Bool("scstats", false, "dump per-subcontract metrics on shutdown and on SIGUSR1")

	callTimeout = flag.Duration("call-timeout", 10*time.Second, "reply wait per forwarded call")
	dialTimeout = flag.Duration("dial-timeout", 3*time.Second, "per connection attempt")
	hbInterval  = flag.Duration("heartbeat", time.Second, "heartbeat interval on idle peer connections")
	leaseGrace  = flag.Duration("lease-grace", 10*time.Second,
		"how long a peer may be silent or disconnected before its references are reclaimed")
	sameMachine = flag.Bool("same-machine", false,
		"enable the same-machine transport tier: listen on unix:<path> addresses and hand large replies over as mapped regions to co-resident peers")
	bulkThreshold = flag.Int("bulk-threshold", 0,
		"payload size (bytes) above which a same-machine call rides a mapped region instead of the frame (0 = default)")

	cacheBudget = flag.Int64("cache-budget", 0,
		"per-entry reply-cache byte budget for the cache manager (0 = default, negative = unbounded)")

	telemetryAddr = flag.String("telemetry", "",
		"serve /metrics, /traces, /healthz and pprof on this address (e.g. :6060; empty = off)")
	traceSample = flag.Int("trace-sample", 0,
		"record a trace for 1 in N calls that arrive untraced (0 = only explicitly traced calls)")
)

func main() {
	flag.Parse()
	log.SetPrefix("springfsd: ")
	log.SetFlags(0)

	trace.SetSampling(*traceSample)
	if *telemetryAddr != "" {
		tp, err := telemetry.Start(*telemetryAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer tp.Close()
		fmt.Printf("springfsd: telemetry on http://%s (/metrics /traces /healthz /debug/pprof)\n", tp.Addr())
	}

	k := kernel.New("springfsd")
	cfg := netd.Config{
		CallTimeout:       *callTimeout,
		DialTimeout:       *dialTimeout,
		HeartbeatInterval: *hbInterval,
		LeaseGrace:        *leaseGrace,
		BulkThreshold:     *bulkThreshold,
	}
	if *sameMachine {
		cfg.Transport = netd.SameMachine()
	}
	net, err := netd.Start(k.NewDomain("netd"), *addr, netd.With(cfg))
	if err != nil {
		log.Fatal(err)
	}

	newEnv := func(name string) *core.Env {
		e := core.NewEnv(k.NewDomain(name))
		if err := filesys.RegisterAll(e.Registry); err != nil {
			log.Fatal(err)
		}
		return e
	}

	// Machine-local services: naming context and cache manager.
	ns := naming.NewServer(newEnv("naming"))
	mgr := cache.NewManagerWith(newEnv("cachemgr"), cache.Config{ReplyBudget: *cacheBudget})
	mgrObj, err := mgr.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	h, err := ns.Handle()
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Bind("cachemgr", mgrObj, false); err != nil {
		log.Fatal(err)
	}

	srvEnv := newEnv("fileserver")
	var svc *filesys.Service
	switch *flavor {
	case "plain":
		svc = filesys.NewService(srvEnv)
	case "caching":
		svc = filesys.NewCachingService(srvEnv, "cachemgr")
	default:
		log.Fatalf("unknown flavor %q (want plain or caching)", *flavor)
	}

	if *snapshot != "" {
		if err := svc.Store().LoadFile(*snapshot); err != nil {
			log.Fatalf("loading snapshot: %v", err)
		}
	}

	net.PublishRoot("fs", svc.Object())
	net.PublishRoot("naming", ns.Object())
	fmt.Printf("springfsd: serving %s file system on %s (roots: fs, naming)\n", *flavor, net.Addr())
	_ = caching.SCID // document the dependency; the flavor selects it at Export time

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if *dumpSC {
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				fmt.Print(scstats.Text())
			}
		}()
	}
	<-sig
	fmt.Println("\nspringfsd: shutting down")
	if *dumpSC {
		fmt.Print(scstats.Text())
	}
	if *snapshot != "" {
		if err := svc.Store().SaveFile(*snapshot); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
	}
	if err := net.Close(); err != nil {
		log.Fatal(err)
	}
}
