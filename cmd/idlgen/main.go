// Command idlgen compiles Spring IDL interface definitions into Go stubs
// and skeletons over the subcontract machinery.
//
// Usage:
//
//	idlgen -package filesys -o gen.go file.idl
//
// The generated file contains, per interface: the runtime type identifier
// and method table (registered at init), a client view whose methods run
// invoke_preamble → marshal → invoke → unmarshal through the object's
// subcontract, a server application interface, and a skeleton dispatching
// incoming calls by operation number.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"

	"repro/internal/idl"
)

func main() {
	pkg := flag.String("package", "main", "package name for the generated file")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: idlgen -package NAME [-o FILE] input.idl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	in := flag.Arg(0)

	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	f, err := idl.Parse(in, string(src))
	if err != nil {
		fatal(err)
	}
	code, err := idl.Generate(f, *pkg)
	if err != nil {
		fatal(err)
	}
	pretty, err := format.Source([]byte(code))
	if err != nil {
		// Emit the raw code anyway so the formatting bug is debuggable.
		fmt.Fprintf(os.Stderr, "idlgen: generated code does not format: %v\n", err)
		pretty = []byte(code)
	}
	if *out == "" {
		os.Stdout.Write(pretty)
		return
	}
	if err := os.WriteFile(*out, pretty, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idlgen:", err)
	os.Exit(1)
}
