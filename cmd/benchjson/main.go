// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark record, preserving a baseline across runs so the
// file carries before/after numbers. Repeated names (a -count=N run) are
// collapsed to per-metric medians, so recorded cells resist scheduler
// noise.
//
// Usage:
//
//	go test -run NONE -bench E15 -benchmem . | benchjson -o BENCH_netd.json
//
// On the first run the parsed results are stored as both "baseline" and
// "current". On later runs an existing file's baseline is preserved and
// only "current" is replaced — so the committed artifact records the
// pre-change numbers next to the latest ones. Pass -rebaseline to promote
// the new run to the baseline as well.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the on-disk schema.
type File struct {
	Experiment string   `json:"experiment"`
	Note       string   `json:"note,omitempty"`
	Baseline   []Result `json:"baseline"`
	Current    []Result `json:"current"`
}

var (
	out        = flag.String("o", "", "output JSON file (default stdout)")
	experiment = flag.String("experiment", "E15 netd pipelined throughput (loopback TCP)", "experiment label")
	note       = flag.String("note", "", "free-form note stored in the file")
	rebaseline = flag.Bool("rebaseline", false, "promote this run to the baseline too")
)

// benchLine matches e.g.
//
//	BenchmarkE15_Throughput_P64_0B-8   12345   9876 ns/op   512 B/op   4 allocs/op   101234 calls/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(lines []string) []Result {
	var results []Result
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iters: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return aggregate(results)
}

// aggregate collapses repeated benchmark names (a -count=N run) into one
// result per name carrying the per-metric median, so the recorded cells
// are stable against scheduler noise instead of whichever run came last.
// Order of first appearance is preserved. Iters is the median too
// (rounded), purely informational.
func aggregate(results []Result) []Result {
	byName := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		runs := byName[name]
		if len(runs) == 1 {
			out = append(out, runs[0])
			continue
		}
		agg := Result{Name: name, Metrics: map[string]float64{}}
		var iters []float64
		keys := map[string]struct{}{}
		for _, r := range runs {
			iters = append(iters, float64(r.Iters))
			for k := range r.Metrics {
				keys[k] = struct{}{}
			}
		}
		agg.Iters = int64(median(iters))
		for k := range keys {
			var vals []float64
			for _, r := range runs {
				if v, ok := r.Metrics[k]; ok {
					vals = append(vals, v)
				}
			}
			agg.Metrics[k] = median(vals)
		}
		out = append(out, agg)
	}
	return out
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func main() {
	flag.Parse()
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	current := parse(lines)
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	f := File{Experiment: *experiment, Note: *note, Baseline: current, Current: current}
	if *out != "" && !*rebaseline {
		if prev, err := os.ReadFile(*out); err == nil {
			var old File
			if json.Unmarshal(prev, &old) == nil && len(old.Baseline) > 0 {
				f.Baseline = old.Baseline
				if f.Note == "" {
					f.Note = old.Note
				}
			}
		}
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(current), *out)
}
